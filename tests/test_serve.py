"""Concurrency/correctness harness for the ``repro serve`` subsystem.

Four contracts, each exercised deterministically (no real sleeps —
every timing-dependent path runs on a :class:`ManualClock`):

* **batched ≡ unbatched** — N concurrent clients through the
  micro-batcher produce row-for-row the same outputs as N sequential
  single-request calls (≤1e-10), across batch-window / max-batch
  settings and m∈{2,3} pipelines;
* **hot reload under traffic** — an atomic ``repro update``-style
  replace mid-traffic drops zero requests, never mixes model versions
  within a batch, and ``/modelz`` converges to the new content hash;
  a half-written temp file next to the model is never loaded, and a
  corrupt (non-atomically written) file keeps the old model serving;
* **protocol/error taxonomy** — malformed JSON, wrong view count,
  per-view dim mismatch, and oversize payloads each map to a
  structured 4xx body, never a stack trace;
* **timeout + drain** — the per-request queueing deadline and the
  SIGTERM drain path, driven by a fake clock.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro.api import (
    MultiviewPipeline,
    hash_model_file,
    load_model,
    save_model,
)
from repro.core import TCCA
from repro.datasets import make_multiview_latent
from repro.exceptions import ShapeError, ValidationError
from repro.serve import (
    ManualClock,
    MicroBatcher,
    ModelManager,
    ProtocolError,
    Request,
    RequestTimeout,
    ServeApp,
    decode_views,
)
from repro.serve.protocol import read_request


# -- helpers -----------------------------------------------------------------


DIMS = {2: (8, 6), 3: (8, 6, 5)}


def fit_pipeline(m: int, seed: int = 0) -> tuple[MultiviewPipeline, object]:
    data = make_multiview_latent(
        n_samples=150, dims=DIMS[m], random_state=seed
    )
    pipeline = MultiviewPipeline(
        "tcca",
        "rls",
        reducer_params={"n_components": 2, "random_state": 0},
    ).fit(data.views, data.labels)
    return pipeline, data


@pytest.fixture(scope="module", params=[2, 3])
def served(request, tmp_path_factory):
    """``(m, fitted pipeline, dataset, model path)`` for m∈{2,3}."""
    m = request.param
    pipeline, data = fit_pipeline(m)
    path = tmp_path_factory.mktemp("serve") / f"model{m}.npz"
    save_model(pipeline, path)
    return m, pipeline, data, os.fspath(path)


def request_views(data, start: int, n_rows: int):
    """One request's views as the JSON wire format (samples-major)."""
    return [
        view[:, start:start + n_rows].T.tolist() for view in data.views
    ]


def library_views(data, start: int, n_rows: int):
    """The same request in the library's ``(d_p, n)`` orientation."""
    return [view[:, start:start + n_rows] for view in data.views]


def post(path: str, payload) -> Request:
    return Request(
        method="POST", path=path, body=json.dumps(payload).encode()
    )


def get(path: str) -> Request:
    return Request(method="GET", path=path)


def body_of(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


async def settle(rounds: int = 3) -> None:
    """Yield a few event-loop turns so created tasks reach their park."""
    for _ in range(rounds):
        await asyncio.sleep(0)


def make_app(path, **options) -> tuple[ServeApp, ManualClock]:
    clock = ManualClock()
    app = ServeApp(ModelManager(path), clock=clock, **options)
    return app, clock


# -- wire decoding -----------------------------------------------------------


class TestDecodeViews:
    def test_decodes_and_transposes(self):
        views = decode_views(
            {"views": [[[1.0, 2.0], [3.0, 4.0]], [[5.0], [6.0]]]}
        )
        assert views[0].shape == (2, 2)
        assert views[1].shape == (1, 2)
        np.testing.assert_allclose(views[0][:, 0], [1.0, 2.0])

    def test_flat_single_sample_allowed(self):
        views = decode_views({"views": [[1.0, 2.0, 3.0], [4.0, 5.0]]})
        assert views[0].shape == (3, 1)
        assert views[1].shape == (2, 1)

    def test_non_object_body_rejected(self):
        with pytest.raises(ValidationError):
            decode_views([1, 2, 3])

    def test_missing_views_rejected(self):
        with pytest.raises(ValidationError):
            decode_views({"view": []})

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            decode_views({"views": [[["a", "b"]], [[1.0, 2.0]]]})

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            decode_views({"views": [[[float("nan")]], [[1.0]]]})

    def test_ragged_sample_counts_rejected(self):
        with pytest.raises(ValidationError):
            decode_views(
                {"views": [[[1.0], [2.0]], [[3.0]]]}
            )

    def test_view_count_checked_against_model(self):
        with pytest.raises(ShapeError):
            decode_views({"views": [[[1.0]]]}, view_dims=(1, 1))

    def test_view_dims_checked_against_model(self):
        with pytest.raises(ShapeError):
            decode_views(
                {"views": [[[1.0, 2.0]], [[3.0]]]}, view_dims=(3, 1)
            )

    def test_default_decode_dtype_is_float64(self):
        views = decode_views({"views": [[1.0, 2.0], [3.0]]})
        assert all(view.dtype == np.float64 for view in views)

    def test_decode_dtype_follows_model_policy(self):
        views = decode_views(
            {"views": [[1.0, 2.0], [3.0]]}, dtype="float32"
        )
        assert all(view.dtype == np.float32 for view in views)


# -- precision policy through the serving surface ----------------------------


class TestServeDtypePolicy:
    @pytest.fixture
    def mixed_model_path(self, tmp_path):
        data = make_multiview_latent(
            n_samples=150, dims=DIMS[2], random_state=3
        )
        model = TCCA(
            n_components=2, random_state=0, precision="mixed"
        ).fit(data.views)
        path = tmp_path / "mixed.npz"
        save_model(model, path)
        return os.fspath(path), data

    def test_modelz_reports_dtype_policy(self, mixed_model_path):
        path, _data = mixed_model_path
        info = ModelManager(path).info()
        assert info["dtype_policy"] == {
            "compute_dtype": "float32",
            "accumulate_dtype": "float64",
            "polish": True,
        }

    def test_float64_model_reports_policy_too(self, served):
        _m, _pipeline, _data, path = served
        info = ModelManager(path).info()
        assert info["dtype_policy"]["compute_dtype"] == "float64"

    def test_transform_serves_mixed_model(self, mixed_model_path):
        path, data = mixed_model_path
        app, clock = make_app(path, max_batch=100, window_seconds=0.5)

        async def run():
            task = asyncio.create_task(
                app.handle(
                    post(
                        "/transform",
                        {"views": request_views(data, 0, 4)},
                    )
                )
            )
            await settle()
            clock.advance(0.5)
            return await task

        response = asyncio.run(run())
        assert response.status == 200
        body = body_of(response)
        outputs = np.asarray(body["outputs"])
        assert outputs.shape[0] == 4
        assert np.isfinite(outputs).all()


# -- HTTP framing ------------------------------------------------------------


def parse_raw(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestHttpFraming:
    def test_get_request(self):
        request = parse_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.keep_alive

    def test_post_with_body(self):
        raw = (
            b"POST /transform HTTP/1.1\r\n"
            b"Content-Length: 4\r\n\r\nabcd"
        )
        request = parse_raw(raw)
        assert request.body == b"abcd"

    def test_connection_close_honored(self):
        request = parse_raw(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_eof_returns_none(self):
        assert parse_raw(b"") is None

    def test_post_without_length_is_411(self):
        with pytest.raises(ProtocolError) as info:
            parse_raw(b"POST /transform HTTP/1.1\r\n\r\n")
        assert info.value.status == 411

    def test_oversize_body_is_413_before_reading(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                b"POST /t HTTP/1.1\r\nContent-Length: 999\r\n\r\n"
            )
            # note: the 999-byte body is never fed — the 413 must fire
            # from the declared length alone
            return await read_request(reader, max_body=10)

        with pytest.raises(ProtocolError) as info:
            asyncio.run(run())
        assert info.value.status == 413
        assert info.value.close

    def test_garbage_request_line_is_400(self):
        with pytest.raises(ProtocolError) as info:
            parse_raw(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400


# -- batched == unbatched ----------------------------------------------------


def wave_plan(n_clients: int):
    """Per-client (start, n_rows) slices: varied row counts, disjoint."""
    plan, start = [], 0
    for index in range(n_clients):
        rows = 1 + index % 3
        plan.append((start, rows))
        start += rows
    return plan


class TestBatchedEquivalence:
    """Serving analogue of PR 5's parallel ≡ serial gate."""

    N_CLIENTS = 8

    def _concurrent(self, app, clock, data, endpoint, advance=None):
        plan = wave_plan(self.N_CLIENTS)

        async def run():
            tasks = [
                asyncio.create_task(
                    app.handle(
                        post(endpoint, {"views": request_views(data, s, n)})
                    )
                )
                for s, n in plan
            ]
            await settle()
            if advance is not None:
                clock.advance(advance)
            return await asyncio.gather(*tasks)

        responses = asyncio.run(run())
        assert all(response.status == 200 for response in responses)
        return plan, [body_of(response) for response in responses]

    @pytest.mark.parametrize(
        "batching",
        ["one_batch", "unbatched", "window"],
    )
    def test_transform_matches_sequential(self, served, batching):
        _, pipeline, data, path = served
        total_rows = sum(n for _, n in wave_plan(self.N_CLIENTS))
        options = {
            "one_batch": dict(max_batch=total_rows, window_seconds=60.0),
            "unbatched": dict(max_batch=1, window_seconds=60.0),
            "window": dict(max_batch=10 * total_rows, window_seconds=2.0),
        }[batching]
        app, clock = make_app(path, **options)
        plan, bodies = self._concurrent(
            app,
            clock,
            data,
            "/transform",
            advance=2.0 if batching == "window" else None,
        )
        for (start, n_rows), body in zip(plan, bodies):
            batched = np.asarray(body["outputs"])
            sequential = pipeline.transform(
                library_views(data, start, n_rows)
            )
            assert batched.shape == sequential.shape
            np.testing.assert_allclose(
                batched, sequential, rtol=0, atol=1e-10
            )
        batch_sizes = {body["batch_size"] for body in bodies}
        if batching == "unbatched":
            assert batch_sizes == {1}
        else:
            # every client was coalesced into the single flush
            assert batch_sizes == {self.N_CLIENTS}
            assert len({body["batch_id"] for body in bodies}) == 1

    @pytest.mark.parametrize("batching", ["one_batch", "unbatched"])
    def test_predict_matches_sequential(self, served, batching):
        _, pipeline, data, path = served
        total_rows = sum(n for _, n in wave_plan(self.N_CLIENTS))
        app, clock = make_app(
            path,
            max_batch=total_rows if batching == "one_batch" else 1,
            window_seconds=60.0,
        )
        plan, bodies = self._concurrent(app, clock, data, "/predict")
        for (start, n_rows), body in zip(plan, bodies):
            sequential = pipeline.predict(library_views(data, start, n_rows))
            assert body["labels"] == [int(label) for label in sequential]

    def test_single_request_flushes_on_window(self, served):
        _, pipeline, data, path = served
        app, clock = make_app(path, max_batch=100, window_seconds=0.5)

        async def run():
            task = asyncio.create_task(
                app.handle(
                    post("/transform", {"views": request_views(data, 0, 2)})
                )
            )
            await settle()
            assert not task.done()  # parked: window not elapsed
            clock.advance(0.49)
            await settle()
            assert not task.done()
            clock.advance(0.01)
            return await task

        response = asyncio.run(run())
        body = body_of(response)
        assert response.status == 200
        np.testing.assert_allclose(
            np.asarray(body["outputs"]),
            pipeline.transform(library_views(data, 0, 2)),
            rtol=0,
            atol=1e-10,
        )
        stats = app.health()["batcher"]["transform"]
        assert stats["flush_on_window"] == 1


# -- hot reload under traffic ------------------------------------------------


class TestHotReload:
    def test_mid_traffic_atomic_replace(self, served, tmp_path):
        m, pipeline, data, _ = served
        # private copy: this test replaces the file mid-traffic
        path = os.fspath(tmp_path / "model.npz")
        save_model(pipeline, path)
        replacement, _ = fit_pipeline(m, seed=99)
        app, clock = make_app(path, max_batch=1_000, window_seconds=1.0)
        old_hash = app.manager.current().sha256
        waves = 4
        per_wave = 6

        async def run():
            bodies = []
            for wave in range(waves):
                tasks = [
                    asyncio.create_task(
                        app.handle(
                            post(
                                "/transform",
                                {"views": request_views(data, 2 * i, 2)},
                            )
                        )
                    )
                    for i in range(per_wave)
                ]
                await settle()
                if wave == 1:
                    # mid-traffic: requests of wave 1 are already parked
                    # when the file is atomically replaced — their flush
                    # must still be internally consistent
                    save_model(replacement, path)
                clock.advance(1.0)
                responses = await asyncio.gather(*tasks)
                assert all(r.status == 200 for r in responses)
                bodies.extend(body_of(r) for r in responses)
            return bodies

        bodies = asyncio.run(run())
        # zero dropped/errored requests
        assert len(bodies) == waves * per_wave
        assert app.errors == 0
        # no batch mixes versions: group by batch_id, one hash per batch
        by_batch: dict[int, set[str]] = {}
        for body in bodies:
            by_batch.setdefault(body["batch_id"], set()).add(
                body["model_hash"]
            )
        assert all(len(hashes) == 1 for hashes in by_batch.values())
        # traffic converged to the new model
        new_hash = hash_model_file(path)
        assert new_hash != old_hash
        assert bodies[0]["model_hash"] == old_hash
        assert bodies[-1]["model_hash"] == new_hash
        assert bodies[-1]["model_version"] == 2
        # /modelz reports the new identity
        info = body_of(asyncio.run(app.handle(get("/modelz"))))
        assert info["sha256"] == new_hash
        assert info["version"] == 2
        assert info["reloads"] == 1
        assert info["reload_errors"] == 0

    def test_reloaded_outputs_match_new_model(self, served, tmp_path):
        m, pipeline, data, _ = served
        path = os.fspath(tmp_path / "model.npz")
        save_model(pipeline, path)
        replacement, _ = fit_pipeline(m, seed=7)
        app, clock = make_app(path, max_batch=2, window_seconds=60.0)
        save_model(replacement, path)

        async def run():
            return await app.handle(
                post("/transform", {"views": request_views(data, 0, 2)})
            )

        body = body_of(asyncio.run(run()))
        np.testing.assert_allclose(
            np.asarray(body["outputs"]),
            replacement.transform(library_views(data, 0, 2)),
            rtol=0,
            atol=1e-10,
        )
        assert body["model_version"] == 2

    def test_half_written_temp_file_never_loaded(self, served):
        _, _, _, path = served
        manager = ModelManager(path)
        # what a crashed save_model leaves behind: a partial temp file
        # next to the model (write_archive writes MODEL.npz.<rand>.tmp)
        temp = path + ".deadbeef.tmp"
        with open(temp, "wb") as handle:
            handle.write(b"\x93NUMPY half-written garbage")
        try:
            snapshot = manager.maybe_reload()
            assert snapshot.version == 1
            assert manager.reloads == 0
            assert manager.reload_errors == 0
            assert snapshot.sha256 == hash_model_file(path)
        finally:
            os.unlink(temp)

    def test_corrupt_replace_keeps_serving_old_model(self, served, tmp_path):
        m, pipeline, data, _ = served
        # private copy: this test corrupts the file in place
        path = os.fspath(tmp_path / "model.npz")
        save_model(pipeline, path)
        app, clock = make_app(path, max_batch=2, window_seconds=60.0)
        good_hash = app.manager.current().sha256
        # a non-atomic writer truncates the file mid-write
        with open(path, "wb") as handle:
            handle.write(b"not a model archive")

        async def run():
            return await app.handle(
                post("/transform", {"views": request_views(data, 0, 2)})
            )

        body = body_of(asyncio.run(run()))
        # the old model keeps serving, and the failure is surfaced
        assert body["model_version"] == 1
        assert body["model_hash"] == good_hash
        assert app.manager.reload_errors >= 1
        assert app.manager.last_error is not None
        # an atomic good save afterwards recovers
        replacement, _ = fit_pipeline(m, seed=11)
        save_model(replacement, path)
        recovered = app.manager.maybe_reload()
        assert recovered.version == 2
        assert recovered.sha256 == hash_model_file(path)


# -- protocol / error taxonomy -----------------------------------------------


def run_handle(app, request):
    return asyncio.run(app.handle(request))


class TestErrorTaxonomy:
    @pytest.fixture()
    def app(self, served):
        app, _ = make_app(served[3], max_batch=1, window_seconds=60.0)
        return app

    def assert_structured(self, response, status, error_type):
        assert response.status == status
        body = body_of(response)
        assert body["error"]["type"] == error_type
        assert body["error"]["status"] == status
        assert "message" in body["error"]
        assert "Traceback" not in response.body.decode()

    def test_malformed_json_is_400(self, app):
        response = run_handle(
            app,
            Request(method="POST", path="/transform", body=b"{nope"),
        )
        self.assert_structured(response, 400, "bad-json")

    def test_non_object_payload_is_400(self, app):
        response = run_handle(app, post("/transform", [1, 2, 3]))
        self.assert_structured(response, 400, "ValidationError")

    def test_wrong_view_count_is_400_shape_error(self, app, served):
        _, _, data, _ = served
        views = request_views(data, 0, 1)[:-1]
        response = run_handle(app, post("/transform", {"views": views}))
        self.assert_structured(response, 400, "ShapeError")

    def test_view_dim_mismatch_is_400_shape_error(self, app, served):
        _, _, data, _ = served
        views = request_views(data, 0, 1)
        views[0] = [row + [0.0] for row in views[0]]  # d_0 + 1 features
        response = run_handle(app, post("/predict", {"views": views}))
        self.assert_structured(response, 400, "ShapeError")

    def test_nan_payload_is_400(self, app, served):
        _, _, data, _ = served
        views = request_views(data, 0, 1)
        views[0][0][0] = None  # JSON null -> NaN on the numeric path
        response = run_handle(app, post("/transform", {"views": views}))
        self.assert_structured(response, 400, "ValidationError")

    def test_unknown_route_is_404(self, app):
        self.assert_structured(
            run_handle(app, get("/nope")), 404, "not-found"
        )

    def test_wrong_method_is_405(self, app):
        self.assert_structured(
            run_handle(app, post("/healthz", {})),
            405,
            "method-not-allowed",
        )
        self.assert_structured(
            run_handle(app, get("/transform")),
            405,
            "method-not-allowed",
        )

    def test_predict_on_bare_reducer_is_400(self, served, tmp_path):
        _, _, data, _ = served
        reducer = TCCA(n_components=2, random_state=0).fit(data.views)
        path = os.fspath(tmp_path / "reducer.npz")
        save_model(reducer, path)
        app, _ = make_app(path, max_batch=1, window_seconds=60.0)
        response = run_handle(
            app, post("/predict", {"views": request_views(data, 0, 1)})
        )
        self.assert_structured(response, 400, "ValidationError")
        # /transform still works on a bare (inductive) reducer
        ok = run_handle(
            app, post("/transform", {"views": request_views(data, 0, 2)})
        )
        assert ok.status == 200
        np.testing.assert_allclose(
            np.asarray(body_of(ok)["outputs"]),
            reducer.transform_combined(library_views(data, 0, 2)),
            rtol=0,
            atol=1e-10,
        )


# -- timeout + drain (fake clock, no sleeps) ---------------------------------


class TestTimeoutAndDrain:
    def test_queued_request_times_out(self, served):
        _, _, data, path = served
        app, clock = make_app(
            path,
            max_batch=1_000,
            window_seconds=120.0,
            timeout_seconds=5.0,
        )

        async def run():
            task = asyncio.create_task(
                app.handle(
                    post("/transform", {"views": request_views(data, 0, 1)})
                )
            )
            await settle()
            clock.advance(4.999)
            await settle()
            assert not task.done()
            clock.advance(0.001)
            return await task

        response = asyncio.run(run())
        body = body_of(response)
        assert response.status == 503
        assert body["error"]["type"] == "timeout"
        stats = app.health()["batcher"]["transform"]
        assert stats["timeouts"] == 1
        assert stats["batches"] == 0

    def test_window_beats_timeout(self, served):
        _, _, data, path = served
        app, clock = make_app(
            path,
            max_batch=1_000,
            window_seconds=1.0,
            timeout_seconds=5.0,
        )

        async def run():
            task = asyncio.create_task(
                app.handle(
                    post("/transform", {"views": request_views(data, 0, 1)})
                )
            )
            await settle()
            clock.advance(1.0)
            response = await task
            clock.advance(10.0)  # stale timeout timer must be inert
            return response

        assert asyncio.run(run()).status == 200

    def test_drain_finishes_parked_requests_then_refuses(self, served):
        _, pipeline, data, path = served
        app, clock = make_app(
            path, max_batch=1_000, window_seconds=120.0
        )

        async def run():
            tasks = [
                asyncio.create_task(
                    app.handle(
                        post(
                            "/transform",
                            {"views": request_views(data, 2 * i, 2)},
                        )
                    )
                )
                for i in range(3)
            ]
            await settle()
            assert not any(task.done() for task in tasks)
            # SIGTERM path: drain flushes the parked batch...
            await app.begin_drain()
            responses = await asyncio.gather(*tasks)
            # ...and later arrivals are refused with a typed 503
            refused = await app.handle(
                post("/transform", {"views": request_views(data, 0, 1)})
            )
            return responses, refused

        responses, refused = asyncio.run(run())
        assert all(response.status == 200 for response in responses)
        for i, response in enumerate(responses):
            np.testing.assert_allclose(
                np.asarray(body_of(response)["outputs"]),
                pipeline.transform(library_views(data, 2 * i, 2)),
                rtol=0,
                atol=1e-10,
            )
        assert refused.status == 503
        assert body_of(refused)["error"]["type"] == "draining"
        health = app.health()
        assert health["status"] == "draining"
        assert health["batcher"]["transform"]["flush_on_drain"] == 1


# -- real sockets end-to-end -------------------------------------------------


async def http_call(port: int, method: str, path: str, payload=None):
    """One HTTP exchange over a fresh connection; ``(status, body dict)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = f"{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":")[1])
        data = await reader.readexactly(length)
        return status, json.loads(data.decode())
    finally:
        writer.close()


class TestSocketServer:
    def test_concurrent_clients_over_real_sockets(self, served):
        _, pipeline, data, path = served
        n_clients = 6
        app, _ = make_app(path, max_batch=n_clients, window_seconds=60.0)
        plan = wave_plan(n_clients)

        async def run():
            server = await asyncio.start_server(
                app.handle_connection, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                status, health = await http_call(port, "GET", "/healthz")
                assert status == 200 and health["status"] == "ok"
                results = await asyncio.gather(
                    *(
                        http_call(
                            port,
                            "POST",
                            "/transform",
                            {"views": request_views(data, s, n)},
                        )
                        for s, n in plan
                    )
                )
                status, info = await http_call(port, "GET", "/modelz")
                assert status == 200
                assert info["sha256"] == hash_model_file(path)
                return results
            finally:
                server.close()
                await server.wait_closed()

        results = asyncio.run(run())
        for (start, n_rows), (status, body) in zip(plan, results):
            assert status == 200
            np.testing.assert_allclose(
                np.asarray(body["outputs"]),
                pipeline.transform(library_views(data, start, n_rows)),
                rtol=0,
                atol=1e-10,
            )

    def test_keep_alive_and_protocol_errors_on_the_wire(self, served):
        _, _, data, path = served
        app, _ = make_app(path, max_batch=1, window_seconds=60.0)

        async def run():
            server = await asyncio.start_server(
                app.handle_connection, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                # two requests on one keep-alive connection
                for _ in range(2):
                    body = json.dumps(
                        {"views": request_views(data, 0, 1)}
                    ).encode()
                    writer.write(
                        b"POST /predict HTTP/1.1\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body
                    )
                    await writer.drain()
                    status_line = await reader.readline()
                    assert b"200" in status_line
                    length = None
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n"):
                            break
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":")[1])
                    await reader.readexactly(length)
                writer.close()
                # a POST without Content-Length gets a structured 411
                status, body = await http_call(port, "POST", "/transform")
                assert status == 411
                assert body["error"]["type"] == "length-required"
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())


# -- batcher unit behavior ---------------------------------------------------


class TestMicroBatcher:
    def test_row_counting_triggers_flush(self):
        calls = []

        def runner(snapshot, stacked):
            calls.append(stacked[0].shape[1])
            return stacked[0].T  # (rows, d)

        batcher = MicroBatcher(
            runner,
            lambda: "snap",
            max_batch=5,
            window_seconds=60.0,
            clock=ManualClock(),
        )

        async def run():
            views = lambda n: [np.ones((3, n)), np.ones((2, n))]
            tasks = [
                asyncio.create_task(batcher.submit(views(2))),
                asyncio.create_task(batcher.submit(views(2))),
                # 4 rows queued: below max_batch, still parked...
            ]
            await settle()
            assert not any(task.done() for task in tasks)
            # ...the 5th row tips the batch over
            tasks.append(asyncio.create_task(batcher.submit(views(1))))
            return await asyncio.gather(*tasks)

        results = asyncio.run(run())
        assert calls == [5]
        assert [r.output.shape[0] for r in results] == [2, 2, 1]
        assert all(r.batch_size == 3 for r in results)
        assert all(r.snapshot == "snap" for r in results)

    def test_runner_failure_fails_every_waiter(self):
        def runner(snapshot, stacked):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(
            runner,
            lambda: None,
            max_batch=2,
            window_seconds=60.0,
            clock=ManualClock(),
        )

        async def run():
            views = [np.ones((3, 1))]
            tasks = [
                asyncio.create_task(batcher.submit(views)),
                asyncio.create_task(batcher.submit(views)),
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(run())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValidationError):
            MicroBatcher(lambda s, v: v, lambda: None, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(
                lambda s, v: v, lambda: None, window_seconds=-1.0
            )
        with pytest.raises(ValueError):
            MicroBatcher(
                lambda s, v: v, lambda: None, timeout_seconds=0.0
            )

    def test_timeout_error_type(self):
        batcher = MicroBatcher(
            lambda s, v: v[0].T,
            lambda: None,
            max_batch=10,
            window_seconds=60.0,
            timeout_seconds=1.0,
            clock=ManualClock(),
        )
        clock = batcher._clock

        async def run():
            task = asyncio.create_task(batcher.submit([np.ones((2, 1))]))
            await settle()
            clock.advance(1.0)
            with pytest.raises(RequestTimeout):
                await task

        asyncio.run(run())


# -- satellites: persistence hash + pipeline introspection + CLI -------------


class TestModelIdentity:
    def test_hash_model_file_tracks_content(self, served, tmp_path):
        m, pipeline, _, path = served
        first = hash_model_file(path)
        assert first == hash_model_file(path)  # stable across reads
        other = os.fspath(tmp_path / "other.npz")
        replacement, _ = fit_pipeline(m, seed=3)
        save_model(replacement, other)
        assert hash_model_file(other) != first

    def test_pipeline_describe_and_view_dims(self, served):
        m, pipeline, _, path = served
        assert pipeline.view_dims == DIMS[m]
        description = pipeline.describe()
        assert description["reducer"] == "tcca"
        assert description["classifier"] == "rls"
        assert description["n_views"] == m
        assert description["view_dims"] == list(DIMS[m])
        # survives a persistence round-trip
        loaded = load_model(path)
        assert loaded.describe() == description

    def test_unfitted_pipeline_has_no_dims(self):
        assert MultiviewPipeline("tcca", "rls").view_dims is None


class TestServeCli:
    def test_serve_parser_defaults(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["serve", "model.npz"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8100
        assert args.batch_window_ms == 5.0
        assert args.max_batch == 32
        assert args.timeout_s == 30.0

    def test_serve_parser_rejects_bad_values(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "model.npz", "--max-batch", "0"]
            )

    def test_serve_missing_model_errors_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(["serve", os.fspath(tmp_path / "missing.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
