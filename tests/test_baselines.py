"""Unit tests for the baselines: PCA, spectral embedding, DSE, SSMVD."""

import numpy as np
import pytest

from repro.baselines import DSE, PCA, SSMVD, knn_affinity, laplacian_eigenmaps
from repro.exceptions import NotFittedError, ValidationError


class TestPCA:
    def test_components_orthonormal(self, rng):
        data = rng.standard_normal((6, 50))
        pca = PCA(3).fit(data)
        np.testing.assert_allclose(
            pca.components_.T @ pca.components_, np.eye(3), atol=1e-12
        )

    def test_explained_variance_descending(self, rng):
        data = rng.standard_normal((6, 80))
        pca = PCA(4).fit(data)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-12)

    def test_reconstructs_low_rank_data(self, rng):
        basis = rng.standard_normal((8, 2))
        scores = rng.standard_normal((2, 60))
        data = basis @ scores
        pca = PCA(2).fit(data)
        projected = pca.transform(data)
        reconstructed = pca.components_ @ projected + pca.mean_
        np.testing.assert_allclose(reconstructed, data, atol=1e-8)

    def test_transform_centers_with_train_mean(self, rng):
        data = rng.standard_normal((4, 30)) + 10.0
        pca = PCA(2).fit(data)
        projected = pca.transform(data)
        np.testing.assert_allclose(
            projected.mean(axis=1), np.zeros(2), atol=1e-8
        )

    def test_cap_behaviour(self, rng):
        data = rng.standard_normal((3, 40))
        assert PCA(10, cap=True).fit(data).n_components_ == 3
        with pytest.raises(ValidationError):
            PCA(10, cap=False).fit(data)

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            PCA(2).transform(rng.standard_normal((3, 4)))

    def test_dim_mismatch(self, rng):
        pca = PCA(2).fit(rng.standard_normal((4, 30)))
        with pytest.raises(ValidationError):
            pca.transform(rng.standard_normal((5, 10)))


class TestKNNAffinity:
    def test_symmetric(self, rng):
        view = rng.standard_normal((3, 30))
        affinity = knn_affinity(view, n_neighbors=4)
        diff = (affinity - affinity.T).toarray()
        np.testing.assert_allclose(diff, np.zeros_like(diff), atol=1e-12)

    def test_min_degree(self, rng):
        view = rng.standard_normal((3, 25))
        affinity = knn_affinity(view, n_neighbors=5)
        degrees = np.asarray((affinity > 0).sum(axis=1)).ravel()
        assert degrees.min() >= 5

    def test_binary_mode_weights(self, rng):
        view = rng.standard_normal((3, 20))
        affinity = knn_affinity(view, n_neighbors=3, mode="binary")
        values = affinity.data
        assert set(np.unique(values)) <= {1.0}

    def test_heat_weights_in_unit_interval(self, rng):
        view = rng.standard_normal((3, 20))
        affinity = knn_affinity(view, n_neighbors=3, mode="heat")
        assert affinity.data.max() <= 1.0 + 1e-12
        assert affinity.data.min() > 0.0

    def test_too_many_neighbors(self, rng):
        with pytest.raises(ValidationError):
            knn_affinity(rng.standard_normal((3, 5)), n_neighbors=5)

    def test_bad_mode(self, rng):
        with pytest.raises(ValidationError):
            knn_affinity(rng.standard_normal((3, 10)), mode="exotic")


class TestLaplacianEigenmaps:
    def test_embedding_shape(self, rng):
        view = rng.standard_normal((4, 40))
        embedding = laplacian_eigenmaps(view, 3)
        assert embedding.shape == (40, 3)

    def test_separates_two_blobs(self, rng):
        blob1 = rng.standard_normal((2, 25)) * 0.2
        blob2 = rng.standard_normal((2, 25)) * 0.2 + 10.0
        view = np.hstack([blob1, blob2])
        embedding = laplacian_eigenmaps(view, 1, n_neighbors=5)
        first = embedding[:25, 0]
        second = embedding[25:, 0]
        # The leading non-trivial eigenvector separates the components.
        assert (first.mean() - second.mean()) ** 2 > 1e-4

    def test_components_bound(self, rng):
        with pytest.raises(ValidationError):
            laplacian_eigenmaps(rng.standard_normal((3, 10)), 10)

    def test_unit_norm_columns(self, rng):
        view = rng.standard_normal((4, 30))
        embedding = laplacian_eigenmaps(view, 2)
        np.testing.assert_allclose(
            np.linalg.norm(embedding, axis=0), np.ones(2), atol=1e-8
        )


class TestDSE:
    def test_embedding_orthonormal(self, rng):
        views = [rng.standard_normal((6, 50)) for _ in range(3)]
        model = DSE(n_components=3, pca_components=5).fit(views)
        np.testing.assert_allclose(
            model.embedding_.T @ model.embedding_, np.eye(3), atol=1e-10
        )

    def test_shapes(self, rng):
        views = [rng.standard_normal((d, 40)) for d in (6, 5, 4)]
        model = DSE(n_components=2, pca_components=4).fit(views)
        assert model.embedding_.shape == (40, 2)
        assert len(model.view_embeddings_) == 3
        assert all(e.shape == (40, 2) for e in model.view_embeddings_)
        assert all(q.shape == (2, 2) for q in model.view_loadings_)

    def test_transductive_no_out_of_sample(self, rng):
        views = [rng.standard_normal((4, 30)) for _ in range(2)]
        model = DSE(n_components=2, pca_components=3).fit(views)
        with pytest.raises(NotImplementedError):
            model.transform(views)

    def test_not_fitted_transform(self, rng):
        with pytest.raises(NotFittedError):
            DSE(n_components=2).transform(
                [rng.standard_normal((3, 10))] * 2
            )

    def test_components_bound(self, rng):
        views = [rng.standard_normal((3, 10)) for _ in range(2)]
        with pytest.raises(ValidationError):
            DSE(n_components=10).fit(views)

    def test_consensus_reflects_shared_structure(self, rng):
        # Two far-apart clusters visible in every view: the consensus
        # embedding must separate them.
        labels = np.repeat([0, 1], 20)
        views = []
        for _ in range(3):
            centers = rng.standard_normal((4, 2)) * 8.0
            views.append(
                centers[:, labels] + 0.3 * rng.standard_normal((4, 40))
            )
        model = DSE(n_components=2, pca_components=4, n_neighbors=5).fit(
            views
        )
        embedding = model.embedding_
        # At least one consensus dimension must separate the clusters
        # sharply (the other may rotate within-cluster structure).
        ratios = [
            abs(
                embedding[labels == 0, d].mean()
                - embedding[labels == 1, d].mean()
            )
            / (
                embedding[labels == 0, d].std()
                + embedding[labels == 1, d].std()
                + 1e-12
            )
            for d in range(embedding.shape[1])
        ]
        assert max(ratios) > 3.0


class TestSSMVD:
    def test_embedding_orthonormal(self, rng):
        views = [rng.standard_normal((6, 40)) for _ in range(3)]
        model = SSMVD(n_components=3, pca_components=5, random_state=0).fit(
            views
        )
        np.testing.assert_allclose(
            model.embedding_.T @ model.embedding_, np.eye(3), atol=1e-10
        )

    def test_objective_decreases(self, rng):
        views = [rng.standard_normal((5, 30)) for _ in range(3)]
        model = SSMVD(
            n_components=2, pca_components=4, random_state=0, max_iter=20
        ).fit(views)
        history = np.array(model.objective_history_)
        assert np.all(np.diff(history) <= 1e-6 * np.abs(history[:-1]) + 1e-9)

    def test_structured_sparsity_rows_shrink(self, rng):
        # With a large β, many projection rows must be driven near zero.
        views = [rng.standard_normal((8, 40)) for _ in range(2)]
        weak = SSMVD(
            n_components=2, beta=1e-3, pca_components=8, random_state=0
        ).fit(views)
        strong = SSMVD(
            n_components=2, beta=10.0, pca_components=8, random_state=0
        ).fit(views)
        weak_norms = np.concatenate(
            [np.linalg.norm(w, axis=1) for w in weak.weights_]
        )
        strong_norms = np.concatenate(
            [np.linalg.norm(w, axis=1) for w in strong.weights_]
        )
        assert strong_norms.sum() < 0.5 * weak_norms.sum()

    def test_transductive_no_out_of_sample(self, rng):
        views = [rng.standard_normal((4, 25))] * 2
        model = SSMVD(n_components=2, pca_components=3, random_state=0).fit(
            views
        )
        with pytest.raises(NotImplementedError):
            model.transform(views)

    def test_deterministic_given_seed(self, rng):
        views = [rng.standard_normal((5, 30)) for _ in range(2)]
        z1 = SSMVD(n_components=2, random_state=4).fit_transform(views)
        z2 = SSMVD(n_components=2, random_state=4).fit_transform(views)
        np.testing.assert_allclose(z1, z2)

    def test_invalid_beta(self):
        with pytest.raises(ValidationError):
            SSMVD(beta=-1.0)
