"""Tests for the experiment registry, reporting, and mini driver runs."""

import numpy as np
import pytest

from repro.evaluation.sweep import MethodSweep
from repro.exceptions import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    format_table,
    get_experiment,
    run_experiment,
)
from repro.experiments.reporting import format_series


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "tab1", "tab2", "tab3", "tab4",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_experiment(self):
        spec = get_experiment("fig3")
        assert spec.paper_artifact == "Figure 3"
        assert callable(spec.driver)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_specs_have_descriptions(self):
        for spec in EXPERIMENTS.values():
            assert spec.description


def _dummy_sweep(name="m", dims=(2, 4), n_runs=2, seed=0):
    rng = np.random.default_rng(seed)
    return MethodSweep(
        method=name,
        dims=dims,
        test_accuracies=rng.uniform(0.4, 0.9, (n_runs, len(dims))),
        validation_accuracies=rng.uniform(0.4, 0.9, (n_runs, len(dims))),
    )


class TestReporting:
    def test_format_table_contains_methods(self):
        sweeps = {"TCCA": _dummy_sweep("TCCA"), "CCA": _dummy_sweep("CCA")}
        table = format_table(sweeps, title="demo")
        assert "TCCA" in table
        assert "demo" in table
        assert "±" in table

    def test_format_series_rows(self):
        sweeps = {"TCCA": _dummy_sweep("TCCA")}
        series = format_series(sweeps)
        assert "dim" in series
        assert series.count("\n") >= 2  # header + one row per dim

    def test_experiment_result_summary(self):
        result = ExperimentResult(
            experiment_id="demo",
            description="",
            panels={"panel": {"TCCA": _dummy_sweep("TCCA")}},
        )
        summary = result.summary()
        assert "panel" in summary
        assert 0.0 <= summary["panel"]["TCCA"] <= 1.0
        assert "demo" in result.table()
        assert "demo" in result.series()


class TestMiniDrivers:
    """Tiny end-to-end runs of each experiment driver."""

    def test_secstr_driver_small(self):
        result = run_experiment(
            "fig3",
            n_unlabeled_small=260,
            n_unlabeled_large=None,
            dims=(3,),
            n_labeled=40,
            n_runs=1,
            random_state=0,
        )
        sweeps = result.panels["unlabeled=260"]
        assert "TCCA" in sweeps
        assert sweeps["TCCA"].test_accuracies.shape == (1, 1)

    def test_ads_driver_small(self):
        result = run_experiment(
            "fig4",
            n_samples=260,
            view_dims=(24, 20, 18),
            dims=(3,),
            n_labeled=40,
            n_runs=1,
            random_state=0,
        )
        sweeps = result.panels["labeled=40"]
        assert set(sweeps) >= {"BSF", "CAT", "TCCA"}

    def test_nuswide_driver_small(self):
        result = run_experiment(
            "fig5",
            n_samples=220,
            labeled_per_concept=(2,),
            dims=(3,),
            n_runs=1,
            random_state=0,
            epsilon_grid=(1e0,),
        )
        assert "labeled=2/concept" in result.panels

    def test_kernel_driver_small(self):
        result = run_experiment(
            "fig6",
            n_samples=90,
            labeled_per_concept=(2,),
            dims=(3,),
            n_runs=1,
            random_state=0,
            epsilon_grid=(1e-1,),
        )
        sweeps = result.panels["labeled=2/concept"]
        assert set(sweeps) == {
            "BSK", "AVG", "KCCA (BST)", "KCCA (AVG)", "KTCCA",
        }

    def test_complexity_driver_small(self):
        result = run_experiment(
            "fig8", n_samples=150, dims=(3,), random_state=0
        )
        costs = result.extras["costs"]
        assert "TCCA" in costs
        assert len(costs["TCCA"]["seconds"]) == 1
        assert result.notes  # renders the cost table

    def test_complexity_unknown_workload(self):
        from repro.experiments.complexity import run_complexity_experiment

        with pytest.raises(ValueError):
            run_complexity_experiment("bogus")
