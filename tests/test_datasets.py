"""Unit tests for the synthetic dataset generators and splits."""

import numpy as np
import pytest

from repro.datasets import (
    MultiviewDataset,
    make_ads_like,
    make_multiview_latent,
    make_nuswide_like,
    make_secstr_like,
    sample_labeled_indices,
    split_validation,
    train_test_split_indices,
)
from repro.datasets.secstr import N_SYMBOLS
from repro.exceptions import DatasetError


class TestMultiviewDataset:
    def test_properties(self, latent_data):
        assert latent_data.n_views == 3
        assert latent_data.n_samples == 200
        assert latent_data.dims == (12, 10, 8)

    def test_subset(self, latent_data):
        subset = latent_data.subset(np.arange(50))
        assert subset.n_samples == 50
        assert subset.dims == latent_data.dims
        np.testing.assert_array_equal(
            subset.labels, latent_data.labels[:50]
        )

    def test_subset_is_copy(self, latent_data):
        subset = latent_data.subset([0, 1, 2])
        subset.views[0][:] = 0.0
        assert not np.all(latent_data.views[0][:, :3] == 0.0)


class TestMakeMultiviewLatent:
    def test_shapes_and_labels(self):
        data = make_multiview_latent(
            100, dims=(5, 6, 7), n_classes=3, random_state=0
        )
        assert data.dims == (5, 6, 7)
        assert data.labels.shape == (100,)
        assert set(np.unique(data.labels)) <= {0, 1, 2}

    def test_deterministic(self):
        a = make_multiview_latent(50, random_state=3)
        b = make_multiview_latent(50, random_state=3)
        for va, vb in zip(a.views, b.views):
            np.testing.assert_allclose(va, vb)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_signal_factors_are_class_informative(self):
        # Large separation and no noise: class means of views must differ.
        data = make_multiview_latent(
            2000,
            class_separation=1.0,
            noise_std=0.1,
            n_nuisance_factors=0,
            random_state=0,
        )
        view = data.views[0]
        mean0 = view[:, data.labels == 0].mean(axis=1)
        mean1 = view[:, data.labels == 1].mean(axis=1)
        assert np.linalg.norm(mean0 - mean1) > 0.1

    def test_nuisance_adds_pairwise_correlation(self):
        base = make_multiview_latent(
            3000, n_nuisance_factors=0, random_state=1
        )
        noisy = make_multiview_latent(
            3000,
            n_nuisance_factors=6,
            nuisance_strength=3.0,
            random_state=1,
        )

        def top_crosscorr(data):
            a = data.views[0] - data.views[0].mean(axis=1, keepdims=True)
            b = data.views[1] - data.views[1].mean(axis=1, keepdims=True)
            cross = a @ b.T / a.shape[1]
            return np.linalg.svd(cross, compute_uv=False)[0]

        assert top_crosscorr(noisy) > top_crosscorr(base)

    def test_validation(self):
        with pytest.raises(DatasetError):
            make_multiview_latent(1)
        with pytest.raises(DatasetError):
            make_multiview_latent(10, n_classes=1)
        with pytest.raises(DatasetError):
            make_multiview_latent(10, dims=(5,))
        with pytest.raises(DatasetError):
            make_multiview_latent(10, n_signal_factors=0)


class TestMakeSecstrLike:
    def test_shapes(self):
        data = make_secstr_like(80, random_state=0)
        assert data.dims == (105, 105, 105)
        assert data.labels.shape == (80,)

    def test_views_are_one_hot(self):
        data = make_secstr_like(50, random_state=0)
        for view in data.views:
            assert set(np.unique(view)) <= {0.0, 1.0}
            # 5 positions per view: each sample has exactly 5 ones.
            np.testing.assert_array_equal(
                view.sum(axis=0), np.full(50, 5.0)
            )
            # Each position block has exactly one active symbol.
            blocks = view.reshape(5, N_SYMBOLS, 50)
            np.testing.assert_array_equal(
                blocks.sum(axis=1), np.ones((5, 50))
            )

    def test_binary_labels(self):
        data = make_secstr_like(60, random_state=1)
        assert set(np.unique(data.labels)) <= {0, 1}

    def test_deterministic(self):
        a = make_secstr_like(40, random_state=5)
        b = make_secstr_like(40, random_state=5)
        np.testing.assert_allclose(a.views[2], b.views[2])

    def test_signal_motifs_affect_distribution(self):
        strong = make_secstr_like(
            3000, signal_tilt=4.0, n_nuisance_motifs=0, random_state=0
        )
        view = strong.views[1]
        mean0 = view[:, strong.labels == 0].mean(axis=1)
        mean1 = view[:, strong.labels == 1].mean(axis=1)
        assert np.abs(mean0 - mean1).max() > 0.05

    def test_validation(self):
        with pytest.raises(DatasetError):
            make_secstr_like(1)
        with pytest.raises(DatasetError):
            make_secstr_like(10, activation_low=0.9, activation_high=0.1)
        with pytest.raises(DatasetError):
            make_secstr_like(10, n_signal_motifs=0)


class TestMakeAdsLike:
    def test_shapes_and_sparsity(self):
        data = make_ads_like(300, dims=(60, 50, 45), random_state=0)
        assert data.dims == (60, 50, 45)
        for view in data.views:
            assert set(np.unique(view)) <= {0.0, 1.0}
            assert view.mean() < 0.2  # sparse

    def test_positive_rate(self):
        data = make_ads_like(4000, random_state=0)
        assert 0.10 < data.labels.mean() < 0.18

    def test_indicative_terms_denser_for_ads(self):
        data = make_ads_like(2000, dims=(60, 50, 45), random_state=0)
        masks = data.metadata["indicative_masks"]
        view = data.views[0]
        ads_rate = view[np.ix_(masks[0], data.labels == 1)].mean()
        other_rate = view[np.ix_(masks[0], data.labels == 0)].mean()
        assert ads_rate > 3.0 * other_rate

    def test_validation(self):
        with pytest.raises(DatasetError):
            make_ads_like(1)
        with pytest.raises(DatasetError):
            make_ads_like(10, positive_rate=1.5)
        with pytest.raises(DatasetError):
            make_ads_like(10, campaign_coherence=2.0)


class TestMakeNuswideLike:
    def test_shapes(self):
        data = make_nuswide_like(200, random_state=0)
        assert data.dims == (500, 144, 128)
        assert data.metadata["concepts"][1] == "cat"

    def test_bow_view_nonnegative_counts(self):
        data = make_nuswide_like(100, random_state=0)
        bow = data.views[0]
        assert bow.min() >= 0.0
        np.testing.assert_allclose(bow, np.round(bow))

    def test_ten_classes(self):
        data = make_nuswide_like(500, random_state=0)
        assert np.unique(data.labels).shape[0] == 10

    def test_custom_classes(self):
        data = make_nuswide_like(100, n_classes=3, random_state=0)
        assert data.metadata["n_classes"] == 3
        assert len(data.metadata["concepts"]) == 3

    def test_validation(self):
        with pytest.raises(DatasetError):
            make_nuswide_like(5, n_classes=10)
        with pytest.raises(DatasetError):
            make_nuswide_like(100, dims=(10, 10))
        with pytest.raises(DatasetError):
            make_nuswide_like(100, n_classes=1)


class TestSplits:
    def test_labeled_indices_total(self):
        labels = np.repeat([0, 1], 50)
        chosen = sample_labeled_indices(labels, 10, random_state=0)
        assert chosen.shape == (10,)
        assert np.unique(labels[chosen]).shape[0] == 2

    def test_labeled_indices_per_class(self):
        labels = np.repeat(np.arange(5), 20)
        chosen = sample_labeled_indices(
            labels, 4, per_class=True, random_state=0
        )
        assert chosen.shape == (20,)
        values, counts = np.unique(labels[chosen], return_counts=True)
        np.testing.assert_array_equal(counts, np.full(5, 4))

    def test_labeled_indices_every_class_covered(self):
        # A rare class must still be covered thanks to the fallback.
        labels = np.array([0] * 98 + [1] * 2)
        for seed in range(5):
            chosen = sample_labeled_indices(labels, 5, random_state=seed)
            assert np.unique(labels[chosen]).shape[0] == 2

    def test_labeled_too_few_for_classes(self):
        labels = np.arange(10)  # ten classes
        with pytest.raises(DatasetError):
            sample_labeled_indices(labels, 5, random_state=0)

    def test_per_class_insufficient_members(self):
        labels = np.array([0, 0, 1])
        with pytest.raises(DatasetError):
            sample_labeled_indices(
                labels, 2, per_class=True, random_state=0
            )

    def test_validation_split_disjoint(self):
        indices = np.arange(100)
        val, test = split_validation(indices, random_state=0)
        assert np.intersect1d(val, test).size == 0
        assert val.size + test.size == 100
        assert val.size == 20

    def test_validation_fraction_bounds(self):
        with pytest.raises(DatasetError):
            split_validation(np.arange(10), fraction=0.0)
        with pytest.raises(DatasetError):
            split_validation(np.arange(10), fraction=1.0)

    def test_train_test_split(self):
        train, test = train_test_split_indices(
            100, test_fraction=0.3, random_state=0
        )
        assert train.size == 70
        assert test.size == 30
        assert np.intersect1d(train, test).size == 0

    def test_split_deterministic(self):
        a = train_test_split_indices(50, random_state=9)
        b = train_test_split_indices(50, random_state=9)
        np.testing.assert_array_equal(a[0], b[0])
