"""Implicit (tensor-free) TCCA: operator identities and solver equivalence."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.tcca as tcca_module
from repro.api import load_model, save_model
from repro.core.tcca import (
    TCCA,
    resolve_tcca_solver,
    whitened_covariance_operator,
    whitened_covariance_operator_streaming,
    whitened_covariance_tensor,
)
from repro.exceptions import DecompositionError, ValidationError
from repro.linalg.covariance import covariance_tensor
from repro.streaming import ArrayViewStream
from repro.tensor import CovarianceTensorOperator
from repro.tensor.decomposition import (
    best_rank1,
    best_rank1_implicit,
    cp_als,
    cp_als_implicit,
)
from repro.tensor.dense import cyclic_mode_order, mode_product, unfold
from repro.tensor.products import khatri_rao

ALL_DIMS = (6, 5, 4, 7)


def _shared_signal_views(rng, m, n=240, noise=0.2):
    """``m`` views sharing one latent factor (TCCA's recovery setting)."""
    t = rng.exponential(1.0, n) - 1.0
    views = []
    for d in ALL_DIMS[:m]:
        direction = rng.standard_normal(d)
        direction /= np.linalg.norm(direction)
        views.append(
            np.outer(direction, t) + noise * rng.standard_normal((d, n))
        )
    return views


def _whitened_views(rng, m, n=120):
    views = [
        view - view.mean(axis=1, keepdims=True)
        for view in _shared_signal_views(rng, m, n=n)
    ]
    return views


def _operators(views, chunk_size=37):
    """The matrix-backed and stream-backed operators over ``views``."""
    dims = [view.shape[0] for view in views]
    identity = [np.eye(d) for d in dims]
    zeros = [np.zeros((d, 1)) for d in dims]
    return {
        "matrix": CovarianceTensorOperator.from_views(views),
        "stream": CovarianceTensorOperator.from_stream(
            ArrayViewStream(views, chunk_size=chunk_size),
            whiteners=identity,
            means=zeros,
        ),
    }


# ---------------------------------------------------------------------------
# CovarianceTensorOperator — contraction identities against the dense tensor
# ---------------------------------------------------------------------------


class TestCovarianceTensorOperator:
    @pytest.mark.parametrize("m", [2, 3, 4])
    @pytest.mark.parametrize("backend", ["matrix", "stream"])
    def test_contractions_match_dense(self, rng, m, backend):
        views = _whitened_views(rng, m)
        dense = covariance_tensor(views)
        operator = _operators(views)[backend]

        assert operator.shape == dense.shape
        assert operator.order == m
        assert operator.n_entries == int(np.prod(dense.shape))
        assert operator.frobenius_norm_sq() == pytest.approx(
            float(np.sum(dense**2)), abs=1e-10
        )

        factors = [rng.standard_normal((d, 3)) for d in dense.shape]
        for mode in range(m):
            others = [
                factors[other]
                for other in reversed(cyclic_mode_order(m, mode))
            ]
            expected = unfold(dense, mode) @ khatri_rao(others)
            np.testing.assert_allclose(
                operator.mttkrp(factors, mode), expected, atol=1e-10
            )
            np.testing.assert_allclose(
                operator.mode_gram(mode),
                unfold(dense, mode) @ unfold(dense, mode).T,
                atol=1e-10,
            )

        vectors = [rng.standard_normal(d) for d in dense.shape]
        contracted = dense
        for mode, vector in enumerate(vectors):
            contracted = mode_product(contracted, vector[None, :], mode)
        assert operator.multi_contract(vectors) == pytest.approx(
            float(contracted.ravel()[0]), abs=1e-10
        )

    def test_validates_factors_and_vectors(self, rng):
        views = _whitened_views(rng, 3)
        operator = CovarianceTensorOperator.from_views(views)
        with pytest.raises(ValidationError):
            operator.mttkrp([np.ones((6, 2)), np.ones((5, 2))], 0)
        with pytest.raises(Exception):
            operator.mttkrp(
                [np.ones((6, 2)), np.ones((5, 3)), np.ones((4, 2))], 0
            )
        with pytest.raises(Exception):
            operator.multi_contract([np.ones(6), np.ones(5), np.ones(3)])
        with pytest.raises(ValidationError):
            operator.mttkrp([np.ones((d, 2)) for d in (6, 5, 4)], 3)

    def test_blocked_norm_matches_unblocked(self, rng):
        # A tiny block budget forces many sample blocks; the accumulation
        # must still agree with the single-block result.
        views = _whitened_views(rng, 3)
        whole = CovarianceTensorOperator.from_views(views)
        blocked = CovarianceTensorOperator.from_views(
            views, block_floats=64
        )
        assert blocked.frobenius_norm_sq() == pytest.approx(
            whole.frobenius_norm_sq(), rel=1e-12
        )
        np.testing.assert_allclose(
            blocked.mode_gram(1), whole.mode_gram(1), atol=1e-12
        )

    def test_zero_tensor_rejected_by_solvers(self):
        views = [np.zeros((3, 10)), np.zeros((4, 10))]
        operator = CovarianceTensorOperator.from_views(views)
        with pytest.raises(DecompositionError):
            cp_als_implicit(operator, 1)
        with pytest.raises(DecompositionError):
            best_rank1_implicit(operator)


# ---------------------------------------------------------------------------
# Implicit solvers vs the dense ones
# ---------------------------------------------------------------------------


class TestImplicitDecomposition:
    @pytest.mark.parametrize("m", [2, 3])
    @pytest.mark.parametrize("rank", [1, 3])
    def test_cp_als_matches_dense(self, rng, m, rank):
        views = _whitened_views(rng, m)
        dense = covariance_tensor(views)
        reference = cp_als(
            dense, rank, tol=1e-12, max_iter=500, random_state=0,
            warn_on_no_convergence=False,
        ).cp.normalize().canonicalize_signs()
        implicit = cp_als_implicit(
            CovarianceTensorOperator.from_views(views),
            rank, tol=1e-12, max_iter=500, random_state=0,
            warn_on_no_convergence=False,
        ).cp.normalize().canonicalize_signs()
        np.testing.assert_allclose(
            implicit.weights, reference.weights, atol=1e-8
        )
        for factor_i, factor_d in zip(implicit.factors, reference.factors):
            np.testing.assert_allclose(factor_i, factor_d, atol=1e-8)

    def test_random_init_draws_match_dense(self, rng):
        # init="random" consumes identical rng variates on both paths.
        views = _whitened_views(rng, 3)
        dense = covariance_tensor(views)
        reference = cp_als(
            dense, 2, init="random", tol=1e-12, max_iter=500,
            random_state=7, warn_on_no_convergence=False,
        ).cp.normalize().canonicalize_signs()
        implicit = cp_als_implicit(
            CovarianceTensorOperator.from_views(views), 2, init="random",
            tol=1e-12, max_iter=500, random_state=7,
            warn_on_no_convergence=False,
        ).cp.normalize().canonicalize_signs()
        for factor_i, factor_d in zip(implicit.factors, reference.factors):
            np.testing.assert_allclose(factor_i, factor_d, atol=1e-8)

    def test_hopm_matches_dense(self, rng):
        views = _whitened_views(rng, 3)
        dense = covariance_tensor(views)
        reference = best_rank1(
            dense, random_state=0, warn_on_no_convergence=False
        )
        implicit = best_rank1_implicit(
            CovarianceTensorOperator.from_views(views),
            random_state=0, warn_on_no_convergence=False,
        )
        assert implicit.cp.weights[0] == pytest.approx(
            reference.cp.weights[0], abs=1e-8
        )
        ref_cp = reference.cp.canonicalize_signs()
        imp_cp = implicit.cp.canonicalize_signs()
        for factor_i, factor_d in zip(imp_cp.factors, ref_cp.factors):
            np.testing.assert_allclose(factor_i, factor_d, atol=1e-8)


# ---------------------------------------------------------------------------
# TCCA solver equivalence — the acceptance matrix
# ---------------------------------------------------------------------------


SOLVER_TOL = dict(tol=1e-10, max_iter=400, random_state=0)


class TestTCCASolverEquivalence:
    @pytest.mark.parametrize("m", [2, 3, 4])
    @pytest.mark.parametrize("rank", [1, 3])
    @pytest.mark.parametrize("construction", ["batch", "stream"])
    def test_implicit_matches_dense(self, rng, m, rank, construction):
        views = _shared_signal_views(rng, m)
        dense = TCCA(n_components=rank, solver="dense", **SOLVER_TOL).fit(
            views
        )
        implicit = TCCA(n_components=rank, solver="implicit", **SOLVER_TOL)
        if construction == "batch":
            implicit.fit(views)
        else:
            implicit.fit_stream(ArrayViewStream(views, chunk_size=64))

        assert dense.solver_used_ == "dense"
        assert implicit.solver_used_ == "implicit"
        np.testing.assert_allclose(
            implicit.correlations_, dense.correlations_, atol=1e-8
        )
        for vectors_i, vectors_d in zip(
            implicit.canonical_vectors_, dense.canonical_vectors_
        ):
            np.testing.assert_allclose(vectors_i, vectors_d, atol=1e-8)
        np.testing.assert_allclose(
            implicit.transform_combined(views),
            dense.transform_combined(views),
            atol=1e-8,
        )

    def test_hopm_solver_equivalence(self, rng):
        views = _shared_signal_views(rng, 3)
        dense = TCCA(
            decomposition="hopm", solver="dense", **SOLVER_TOL
        ).fit(views)
        implicit = TCCA(
            decomposition="hopm", solver="implicit", **SOLVER_TOL
        ).fit(views)
        np.testing.assert_allclose(
            implicit.correlations_, dense.correlations_, atol=1e-8
        )
        for vectors_i, vectors_d in zip(
            implicit.canonical_vectors_, dense.canonical_vectors_
        ):
            np.testing.assert_allclose(vectors_i, vectors_d, atol=1e-8)

    def test_precomputed_operator_reused_across_ranks(self, rng):
        views = _shared_signal_views(rng, 3)
        state = whitened_covariance_operator(views, 1e-2)
        assert state.has_operator and not state.has_tensor
        for rank in (1, 2):
            model = TCCA(
                n_components=rank, solver="implicit", **SOLVER_TOL
            ).fit(views, precomputed=state)
            reference = TCCA(
                n_components=rank, solver="implicit", **SOLVER_TOL
            ).fit(views)
            np.testing.assert_allclose(
                model.transform_combined(views),
                reference.transform_combined(views),
                atol=1e-10,
            )

    def test_streaming_operator_state_matches_batch(self, rng):
        views = _shared_signal_views(rng, 3)
        batch = whitened_covariance_operator(views, 1e-2)
        streamed = whitened_covariance_operator_streaming(
            ArrayViewStream(views, chunk_size=50), 1e-2
        )
        for mean_b, mean_s in zip(batch.means, streamed.means):
            np.testing.assert_allclose(mean_b, mean_s, atol=1e-10)
        for whitener_b, whitener_s in zip(
            batch.whiteners, streamed.whiteners
        ):
            np.testing.assert_allclose(whitener_b, whitener_s, atol=1e-10)
        assert streamed.operator.frobenius_norm_sq() == pytest.approx(
            batch.operator.frobenius_norm_sq(), rel=1e-10
        )


# ---------------------------------------------------------------------------
# Solver selection and validation
# ---------------------------------------------------------------------------


class TestSolverSelection:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ValidationError):
            TCCA(solver="magic")

    def test_power_with_implicit_rejected(self):
        with pytest.raises(ValidationError):
            TCCA(decomposition="power", solver="implicit")

    def test_auto_resolution_by_budget(self):
        assert resolve_tcca_solver("auto", (6, 5, 4)) == "dense"
        assert resolve_tcca_solver("auto", (500, 500, 500)) == "implicit"
        assert (
            resolve_tcca_solver("auto", (500, 500, 500), "power") == "dense"
        )
        # The entry count is exact Python arithmetic: dims whose product
        # overflows int64 (here 2**64) must still resolve implicit, not
        # wrap around to a small number and pick dense.
        assert resolve_tcca_solver("auto", (65536,) * 4) == "implicit"
        with pytest.raises(ValidationError):
            resolve_tcca_solver("magic", (6, 5, 4))

    def test_auto_picks_implicit_past_budget(self, rng, monkeypatch):
        views = _shared_signal_views(rng, 3)
        monkeypatch.setattr(
            tcca_module, "AUTO_SOLVER_DENSE_BUDGET", 8
        )
        model = TCCA(n_components=1, random_state=0).fit(views)
        assert model.solver_used_ == "implicit"

    def test_auto_adapts_to_precomputed_form(self, rng, monkeypatch):
        views = _shared_signal_views(rng, 3)
        dense_state = whitened_covariance_tensor(views, 1e-2)
        # auto resolves to implicit (tiny budget) but the state only has
        # the dense tensor: fall back instead of failing.
        monkeypatch.setattr(tcca_module, "AUTO_SOLVER_DENSE_BUDGET", 8)
        model = TCCA(n_components=1, random_state=0).fit(
            views, precomputed=dense_state
        )
        assert model.solver_used_ == "dense"
        operator_state = whitened_covariance_operator(views, 1e-2)
        monkeypatch.setattr(
            tcca_module, "AUTO_SOLVER_DENSE_BUDGET", 2**24
        )
        model = TCCA(n_components=1, random_state=0).fit(
            views, precomputed=operator_state
        )
        assert model.solver_used_ == "implicit"

    def test_auto_power_with_operator_only_state_rejected(
        self, rng, monkeypatch
    ):
        # power has no implicit form; auto must not silently flip to the
        # operator when the dense tensor is missing — it raises a clear
        # "needs the dense tensor" error instead.
        views = _shared_signal_views(rng, 3)
        operator_state = whitened_covariance_operator(views, 1e-2)
        monkeypatch.setattr(tcca_module, "AUTO_SOLVER_DENSE_BUDGET", 8)
        with pytest.raises(ValidationError, match="dense tensor"):
            TCCA(decomposition="power", solver="auto").fit(
                views, precomputed=operator_state
            )

    def test_explicit_solver_mismatched_state_rejected(self, rng):
        views = _shared_signal_views(rng, 3)
        dense_state = whitened_covariance_tensor(views, 1e-2)
        operator_state = whitened_covariance_operator(views, 1e-2)
        with pytest.raises(ValidationError):
            TCCA(solver="implicit").fit(views, precomputed=dense_state)
        with pytest.raises(ValidationError):
            TCCA(solver="dense").fit(views, precomputed=operator_state)

    def test_whitened_tensor_needs_a_form(self):
        with pytest.raises(ValidationError):
            tcca_module.WhitenedTensor(means=[], whiteners=[], epsilon=0.1)

    def test_solver_in_params_roundtrip(self):
        model = TCCA(n_components=2, solver="implicit")
        assert model.get_params()["solver"] == "implicit"
        clone = TCCA.from_config(model.to_config())
        assert clone.solver == "implicit"


# ---------------------------------------------------------------------------
# Persistence of an implicit-fitted model
# ---------------------------------------------------------------------------


class TestImplicitPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        views = _shared_signal_views(rng, 3)
        model = TCCA(
            n_components=2, solver="implicit", random_state=0
        ).fit(views)
        path = tmp_path / "implicit.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert isinstance(loaded, TCCA)
        assert loaded.solver == "implicit"
        assert loaded.solver_used_ == "implicit"
        assert loaded.covariance_tensor_shape_ == (6, 5, 4)
        np.testing.assert_allclose(
            loaded.transform_combined(views),
            model.transform_combined(views),
            atol=1e-12,
        )
