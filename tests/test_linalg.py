"""Unit tests for repro.linalg: covariance structures, whitening, eigen."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.covariance import (
    covariance_tensor,
    cross_covariance,
    view_covariance,
)
from repro.linalg.eigen import (
    solve_sym_posdef,
    symmetric_eigh_descending,
    top_generalized_eig,
)
from repro.linalg.whitening import (
    inverse_sqrt_psd,
    regularized_inverse_sqrt,
    sqrt_psd,
)


class TestViewCovariance:
    def test_matches_definition(self, rng):
        view = rng.standard_normal((4, 30))
        expected = sum(
            np.outer(view[:, n], view[:, n]) for n in range(30)
        ) / 30
        np.testing.assert_allclose(view_covariance(view), expected)

    def test_centering_option(self, rng):
        view = rng.standard_normal((4, 30)) + 5.0
        centered = view - view.mean(axis=1, keepdims=True)
        np.testing.assert_allclose(
            view_covariance(view, assume_centered=False),
            view_covariance(centered),
        )

    def test_psd(self, rng):
        cov = view_covariance(rng.standard_normal((5, 20)))
        eigenvalues = np.linalg.eigvalsh(cov)
        assert eigenvalues.min() >= -1e-12


class TestCrossCovariance:
    def test_matches_definition(self, rng):
        a = rng.standard_normal((3, 25))
        b = rng.standard_normal((4, 25))
        np.testing.assert_allclose(cross_covariance(a, b), a @ b.T / 25)

    def test_transpose_symmetry(self, rng):
        a = rng.standard_normal((3, 25))
        b = rng.standard_normal((4, 25))
        np.testing.assert_allclose(
            cross_covariance(a, b), cross_covariance(b, a).T
        )

    def test_sample_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            cross_covariance(
                rng.standard_normal((3, 10)), rng.standard_normal((3, 12))
            )


class TestCovarianceTensor:
    def test_matches_einsum_3views(self, three_views):
        expected = np.einsum("an,bn,cn->abc", *three_views) / 40
        np.testing.assert_allclose(
            covariance_tensor(three_views), expected, atol=1e-12
        )

    def test_matches_einsum_4views(self, rng):
        views = [rng.standard_normal((d, 15)) for d in (3, 4, 2, 5)]
        expected = np.einsum("an,bn,cn,dn->abcd", *views) / 15
        np.testing.assert_allclose(
            covariance_tensor(views), expected, atol=1e-12
        )

    def test_two_views_is_cross_covariance(self, rng):
        a = rng.standard_normal((3, 20))
        b = rng.standard_normal((4, 20))
        np.testing.assert_allclose(
            covariance_tensor([a, b]), cross_covariance(a, b), atol=1e-12
        )

    def test_centering_option(self, rng):
        views = [rng.standard_normal((3, 30)) + 2.0 for _ in range(3)]
        centered = [v - v.mean(axis=1, keepdims=True) for v in views]
        np.testing.assert_allclose(
            covariance_tensor(views, assume_centered=False),
            covariance_tensor(centered),
            atol=1e-12,
        )

    def test_permuting_views_transposes_tensor(self, three_views):
        tensor = covariance_tensor(three_views)
        permuted = covariance_tensor(
            [three_views[1], three_views[2], three_views[0]]
        )
        np.testing.assert_allclose(
            permuted, np.transpose(tensor, (1, 2, 0)), atol=1e-12
        )

    def test_rank1_data_gives_rank1_tensor(self, rng):
        t = rng.standard_normal(50)
        views = [np.outer(rng.standard_normal(4), t) for _ in range(3)]
        tensor = covariance_tensor(views)
        from repro.tensor.dense import unfold

        for mode in range(3):
            s = np.linalg.svd(unfold(tensor, mode), compute_uv=False)
            assert np.sum(s > 1e-10 * s[0]) == 1


class TestWhitening:
    def test_sqrt_squares_back(self, rng):
        a = rng.standard_normal((5, 5))
        psd = a @ a.T
        root = sqrt_psd(psd)
        np.testing.assert_allclose(root @ root, psd, atol=1e-10)

    def test_inverse_sqrt_inverts(self, rng):
        a = rng.standard_normal((5, 5))
        psd = a @ a.T + np.eye(5)
        inv_root = inverse_sqrt_psd(psd)
        np.testing.assert_allclose(
            inv_root @ psd @ inv_root, np.eye(5), atol=1e-8
        )

    def test_inverse_sqrt_symmetric(self, rng):
        a = rng.standard_normal((4, 4))
        inv_root = inverse_sqrt_psd(a @ a.T + np.eye(4))
        np.testing.assert_allclose(inv_root, inv_root.T, atol=1e-12)

    def test_regularized_whitens_covariance(self, rng):
        view = rng.standard_normal((4, 200))
        view = view - view.mean(axis=1, keepdims=True)
        cov = view_covariance(view)
        whitener = regularized_inverse_sqrt(cov, 1e-3)
        whitened_cov = whitener @ cov @ whitener
        # Should be close to identity (up to the ε damping).
        np.testing.assert_allclose(whitened_cov, np.eye(4), atol=5e-3)

    def test_negative_epsilon_raises(self, rng):
        with pytest.raises(ValidationError):
            regularized_inverse_sqrt(np.eye(3), -1.0)

    def test_nonpositive_floor_raises(self):
        with pytest.raises(ValidationError):
            inverse_sqrt_psd(np.eye(3), eig_floor=0.0)

    def test_singular_matrix_damped_not_exploding(self):
        singular = np.diag([1.0, 0.0])
        inv_root = inverse_sqrt_psd(singular, eig_floor=1e-6)
        assert np.all(np.isfinite(inv_root))
        assert inv_root[1, 1] == pytest.approx(1e3)


class TestEigenHelpers:
    def test_descending_order(self, rng):
        a = rng.standard_normal((6, 6))
        eigenvalues, eigenvectors = symmetric_eigh_descending(a + a.T)
        assert np.all(np.diff(eigenvalues) <= 1e-12)
        np.testing.assert_allclose(
            (a + a.T) @ eigenvectors,
            eigenvectors * eigenvalues,
            atol=1e-8,
        )

    def test_generalized_eig_b_normalized(self, rng):
        a = rng.standard_normal((5, 5))
        a = a + a.T
        b = rng.standard_normal((5, 5))
        b = b @ b.T + np.eye(5)
        eigenvalues, vectors = top_generalized_eig(a, b, 3)
        for k in range(3):
            v = vectors[:, k]
            assert v @ b @ v == pytest.approx(1.0, abs=1e-8)
            np.testing.assert_allclose(
                a @ v, eigenvalues[k] * (b @ v), atol=1e-6
            )

    def test_generalized_eig_identity_b(self, rng):
        a = rng.standard_normal((4, 4))
        a = a + a.T
        eigenvalues, _vectors = top_generalized_eig(a, np.eye(4), 2)
        expected = np.sort(np.linalg.eigvalsh(a))[::-1][:2]
        np.testing.assert_allclose(eigenvalues, expected, atol=1e-8)

    def test_component_bounds(self, rng):
        with pytest.raises(ValidationError):
            top_generalized_eig(np.eye(3), np.eye(3), 4)

    def test_solve_sym_posdef(self, rng):
        a = rng.standard_normal((5, 5))
        spd = a @ a.T + 5 * np.eye(5)
        rhs = rng.standard_normal((5, 2))
        x = solve_sym_posdef(spd, rhs)
        np.testing.assert_allclose(spd @ x, rhs, atol=1e-8)
