"""Property-based tests (hypothesis) for the core algebraic invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.tcca import multiview_canonical_correlation
from repro.kernels.centering import center_kernel, normalize_kernel
from repro.kernels.distances import chi_square_distances, euclidean_distances
from repro.linalg.covariance import covariance_tensor
from repro.linalg.whitening import inverse_sqrt_psd, sqrt_psd
from repro.tensor.cp import CPTensor
from repro.tensor.dense import (
    fold,
    frobenius_norm,
    inner_product,
    mode_product,
    outer_product,
    unfold,
)
from repro.tensor.products import khatri_rao, kronecker

_FLOATS = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def _tensor_strategy(max_side=4, min_order=2, max_order=4):
    return st.integers(min_order, max_order).flatmap(
        lambda order: arrays(
            np.float64,
            st.tuples(
                *[st.integers(1, max_side) for _ in range(order)]
            ).map(tuple),
            elements=_FLOATS,
        )
    )


class TestUnfoldProperties:
    @settings(max_examples=40, deadline=None)
    @given(tensor=_tensor_strategy())
    def test_roundtrip(self, tensor):
        for mode in range(tensor.ndim):
            rebuilt = fold(unfold(tensor, mode), mode, tensor.shape)
            np.testing.assert_allclose(rebuilt, tensor)

    @settings(max_examples=40, deadline=None)
    @given(tensor=_tensor_strategy())
    def test_unfolding_preserves_norm(self, tensor):
        for mode in range(tensor.ndim):
            assert np.linalg.norm(unfold(tensor, mode)) == pytest.approx(
                frobenius_norm(tensor), abs=1e-9
            )

    @settings(max_examples=30, deadline=None)
    @given(tensor=_tensor_strategy(max_order=3), data=st.data())
    def test_mode_product_unfolding_identity(self, tensor, data):
        mode = data.draw(st.integers(0, tensor.ndim - 1))
        rows = data.draw(st.integers(1, 3))
        matrix = data.draw(
            arrays(
                np.float64,
                (rows, tensor.shape[mode]),
                elements=_FLOATS,
            )
        )
        product = mode_product(tensor, matrix, mode)
        np.testing.assert_allclose(
            unfold(product, mode),
            matrix @ unfold(tensor, mode),
            atol=1e-8,
        )


class TestLinearityProperties:
    @settings(max_examples=30, deadline=None)
    @given(tensor=_tensor_strategy(max_order=3), scale=_FLOATS)
    def test_mode_product_homogeneous(self, tensor, scale):
        matrix = np.ones((1, tensor.shape[0]))
        np.testing.assert_allclose(
            mode_product(scale * tensor, matrix, 0),
            scale * mode_product(tensor, matrix, 0),
            atol=1e-6,
        )

    @settings(max_examples=30, deadline=None)
    @given(
        a=arrays(np.float64, (3, 4, 2), elements=_FLOATS),
        b=arrays(np.float64, (3, 4, 2), elements=_FLOATS),
    )
    def test_inner_product_symmetric(self, a, b):
        assert inner_product(a, b) == pytest.approx(
            inner_product(b, a), abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(a=arrays(np.float64, (3, 4, 2), elements=_FLOATS))
    def test_cauchy_schwarz(self, a):
        b = np.ones_like(a)
        lhs = abs(inner_product(a, b))
        rhs = frobenius_norm(a) * frobenius_norm(b)
        assert lhs <= rhs + 1e-8


class TestProductProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        a=arrays(np.float64, (2, 3), elements=_FLOATS),
        b=arrays(np.float64, (3, 3), elements=_FLOATS),
    )
    def test_khatri_rao_columns_match_kron(self, a, b):
        result = khatri_rao([a, b])
        for r in range(3):
            np.testing.assert_allclose(
                result[:, r], np.kron(a[:, r], b[:, r]), atol=1e-9
            )

    @settings(max_examples=30, deadline=None)
    @given(
        a=arrays(np.float64, (2, 2), elements=_FLOATS),
        b=arrays(np.float64, (3, 2), elements=_FLOATS),
    )
    def test_kronecker_norm_multiplicative(self, a, b):
        assert np.linalg.norm(kronecker([a, b])) == pytest.approx(
            np.linalg.norm(a) * np.linalg.norm(b), abs=1e-7
        )

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_outer_product_rank1_norm(self, data):
        vectors = [
            data.draw(arrays(np.float64, (size,), elements=_FLOATS))
            for size in (2, 3, 4)
        ]
        tensor = outer_product(vectors)
        expected = np.prod([np.linalg.norm(v) for v in vectors])
        assert frobenius_norm(tensor) == pytest.approx(expected, abs=1e-7)


class TestCPProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_cp_norm_matches_dense(self, data):
        rank = data.draw(st.integers(1, 3))
        shape = data.draw(
            st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
        )
        weights = data.draw(
            arrays(np.float64, (rank,), elements=_FLOATS)
        )
        factors = [
            data.draw(arrays(np.float64, (s, rank), elements=_FLOATS))
            for s in shape
        ]
        cp = CPTensor(weights=weights, factors=factors)
        assert cp.norm() == pytest.approx(
            np.linalg.norm(cp.to_dense().ravel()), abs=1e-6, rel=1e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_normalize_preserves_tensor(self, data):
        rank = data.draw(st.integers(1, 3))
        weights = data.draw(arrays(np.float64, (rank,), elements=_FLOATS))
        factors = [
            data.draw(arrays(np.float64, (s, rank), elements=_FLOATS))
            for s in (3, 2, 4)
        ]
        cp = CPTensor(weights=weights, factors=factors)
        np.testing.assert_allclose(
            cp.normalize().to_dense(), cp.to_dense(), atol=1e-7
        )


class TestCovarianceProperties:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_theorem1_identity(self, data):
        n = data.draw(st.integers(3, 8))
        views = [
            data.draw(arrays(np.float64, (d, n), elements=_FLOATS))
            for d in (2, 3, 2)
        ]
        views = [v - v.mean(axis=1, keepdims=True) for v in views]
        vectors = [
            data.draw(arrays(np.float64, (v.shape[0],), elements=_FLOATS))
            for v in views
        ]
        tensor = covariance_tensor(views)
        tensor_side = tensor
        for mode, h in enumerate(vectors):
            tensor_side = mode_product(tensor_side, h[None, :], mode)
        assert multiview_canonical_correlation(
            views, vectors
        ) == pytest.approx(float(tensor_side.ravel()[0]), abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_covariance_tensor_multilinear_in_views(self, data):
        n = data.draw(st.integers(2, 6))
        views = [
            data.draw(arrays(np.float64, (2, n), elements=_FLOATS))
            for _ in range(3)
        ]
        scale = data.draw(st.floats(0.1, 5.0))
        base = covariance_tensor(views)
        scaled = covariance_tensor([scale * views[0], views[1], views[2]])
        np.testing.assert_allclose(scaled, scale * base, atol=1e-6)


class TestWhiteningProperties:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_sqrt_and_inverse_sqrt_compose(self, data):
        size = data.draw(st.integers(1, 5))
        raw = data.draw(
            arrays(np.float64, (size, size), elements=_FLOATS)
        )
        psd = raw @ raw.T + np.eye(size)
        np.testing.assert_allclose(
            sqrt_psd(psd) @ inverse_sqrt_psd(psd),
            np.eye(size),
            atol=1e-6,
        )


class TestKernelProperties:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_euclidean_triangle_inequality(self, data):
        view = data.draw(
            arrays(np.float64, (2, 4), elements=_FLOATS)
        )
        distances = euclidean_distances(view)
        for i in range(4):
            for j in range(4):
                for k in range(4):
                    assert distances[i, j] <= (
                        distances[i, k] + distances[k, j] + 1e-7
                    )

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_chi2_symmetry_nonnegativity(self, data):
        view = data.draw(
            arrays(
                np.float64,
                (3, 4),
                elements=st.floats(0.0, 5.0),
            )
        )
        distances = chi_square_distances(view)
        assert distances.min() >= 0.0
        np.testing.assert_allclose(distances, distances.T, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_centered_kernel_still_psd(self, data):
        raw = data.draw(
            arrays(np.float64, (4, 5), elements=_FLOATS)
        )
        kernel = raw.T @ raw
        centered = center_kernel(kernel)
        eigenvalues = np.linalg.eigvalsh(0.5 * (centered + centered.T))
        assert eigenvalues.min() >= -1e-7

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_normalized_kernel_entries_bounded(self, data):
        raw = data.draw(
            arrays(np.float64, (3, 4), elements=_FLOATS)
        )
        kernel = raw.T @ raw + 1e-3 * np.eye(4)
        normalized = normalize_kernel(kernel)
        assert np.abs(normalized).max() <= 1.0 + 1e-6
