"""Tests for the backend dispatch layer and the precision policy.

NumPy is the always-available reference backend and is tested
unconditionally; the ``array_api_strict`` and torch legs are gated on
import availability and skip cleanly where those libraries are absent
(the CI ``array-api`` job installs ``array-api-strict`` to run them).
"""

import importlib.util
from types import SimpleNamespace

import numpy as np
import pytest

from repro.backends import (
    DTypePolicy,
    PRECISION_CHOICES,
    array_namespace,
    asarray_like,
    einsum,
    is_numpy_namespace,
    reshape_fortran,
    resolve_precision,
    to_numpy,
)
from repro.exceptions import ValidationError


class TestArrayNamespace:
    def test_numpy_arrays_resolve_to_numpy(self):
        xp = array_namespace(np.zeros(3), np.ones((2, 2)))
        assert is_numpy_namespace(xp)

    def test_scalars_and_lists_resolve_to_numpy(self):
        assert is_numpy_namespace(array_namespace(1.0, [1, 2], None))

    def test_no_arguments_resolves_to_numpy(self):
        assert array_namespace() is np

    def test_foreign_namespace_is_believed(self):
        fake = SimpleNamespace(__name__="fakelib")
        array = SimpleNamespace(__array_namespace__=lambda: fake)
        assert array_namespace(array, np.zeros(2)) is fake

    def test_mixing_two_foreign_namespaces_raises(self):
        one = SimpleNamespace(__name__="one")
        two = SimpleNamespace(__name__="two")
        a = SimpleNamespace(__array_namespace__=lambda: one)
        b = SimpleNamespace(__array_namespace__=lambda: two)
        with pytest.raises(TypeError, match="different array-API"):
            array_namespace(a, b)


class TestConversionHelpers:
    def test_asarray_like_matches_reference_backend(self):
        out = asarray_like([1.0, 2.0], np.zeros(2), dtype=np.float32)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float32

    def test_to_numpy_passes_numpy_through_untouched(self):
        array = np.arange(6.0).reshape(2, 3)
        assert to_numpy(array) is array

    def test_to_numpy_detaches_torch_like_objects(self):
        class FakeTensor:
            def __init__(self, data):
                self.data = data

            def detach(self):
                return self

            def cpu(self):
                return self

            def __array__(self, dtype=None, copy=None):
                return np.asarray(self.data)

        out = to_numpy(FakeTensor([1.0, 2.0]))
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, [1.0, 2.0])


class TestEinsumFallbacks:
    #: a namespace with no ``einsum`` — forces the broadcast fallbacks
    _strict = SimpleNamespace(sum=np.sum, __name__="noeinsum")

    @pytest.mark.parametrize(
        "signature, shapes",
        [
            ("ir,jr->ijr", [(4, 3), (5, 3)]),
            ("ir,ir->r", [(4, 3), (4, 3)]),
            ("ij,ij->j", [(4, 3), (4, 3)]),
            ("ijr,jr->ir", [(4, 5, 3), (5, 3)]),
        ],
    )
    def test_fallback_matches_native_einsum(self, rng, signature, shapes):
        operands = [rng.standard_normal(shape) for shape in shapes]
        expected = np.einsum(signature, *operands)
        actual = einsum(self._strict, signature, *operands)
        np.testing.assert_allclose(actual, expected, rtol=1e-13)

    def test_native_einsum_preferred(self, rng):
        operands = [rng.standard_normal((3, 2)) for _ in range(2)]
        out = einsum(np, "ir,jr->ijr", *operands)
        np.testing.assert_array_equal(
            out, np.einsum("ir,jr->ijr", *operands)
        )

    def test_unknown_signature_without_einsum_raises(self):
        with pytest.raises(NotImplementedError, match="no fallback"):
            einsum(self._strict, "abc,cd->abd", np.zeros((1, 1, 1)))


class TestReshapeFortran:
    def test_numpy_fast_path(self, rng):
        array = rng.standard_normal((3, 4, 5))
        out = reshape_fortran(np, array, (12, 5))
        np.testing.assert_array_equal(
            out, np.reshape(array, (12, 5), order="F")
        )

    def test_generic_path_matches_numpy_order_f(self, rng):
        class Wrapped:
            """A non-ndarray carrier so the generic path is exercised."""

            def __init__(self, data):
                self.data = np.asarray(data)
                self.ndim = self.data.ndim

        xp = SimpleNamespace(
            permute_dims=lambda a, axes: Wrapped(
                np.transpose(_unwrap(a), axes)
            ),
            reshape=lambda a, shape: Wrapped(
                np.reshape(_unwrap(a), shape)
            ),
            __name__="wrapped",
        )

        def _unwrap(a):
            return a.data if isinstance(a, Wrapped) else np.asarray(a)

        array = np.arange(24.0).reshape(2, 3, 4)
        out = reshape_fortran(xp, Wrapped(array), (6, 4))
        np.testing.assert_array_equal(
            out.data, np.reshape(array, (6, 4), order="F")
        )

    def test_namespace_without_permute_dims_raises(self):
        class Opaque:
            ndim = 1

        xp = SimpleNamespace(__name__="bare")
        with pytest.raises(NotImplementedError, match="permute_dims"):
            reshape_fortran(xp, Opaque(), (1,))


class TestDTypePolicy:
    def test_default_policy_is_all_float64(self):
        policy = DTypePolicy()
        assert policy.compute == np.float64
        assert policy.accumulate == np.float64
        assert policy.is_default
        assert not policy.polish

    def test_resolve_none_and_float64_are_default(self):
        assert resolve_precision(None).is_default
        assert resolve_precision("float64").is_default

    def test_resolve_mixed(self):
        policy = resolve_precision("mixed")
        assert policy.compute == np.float32
        assert policy.accumulate == np.float64
        assert policy.polish
        assert not policy.is_default

    def test_resolve_float32(self):
        policy = resolve_precision("float32")
        assert policy.compute == np.float32
        assert policy.accumulate == np.float32
        assert not policy.polish

    def test_bespoke_policy_passes_through(self):
        policy = DTypePolicy(compute_dtype="float32", polish=True)
        assert resolve_precision(policy) is policy

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValidationError, match="precision"):
            resolve_precision("float16ish")

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValidationError, match="float32 and float64"):
            DTypePolicy(compute_dtype="float16")

    def test_dtype_objects_normalize_to_names(self):
        policy = DTypePolicy(compute_dtype=np.float32)
        assert policy.compute_dtype == "float32"

    def test_sweep_tol_floors_at_sqrt_eps(self):
        policy = resolve_precision("mixed")
        floor = float(np.sqrt(np.finfo(np.float32).eps))
        assert policy.sweep_tol(1e-8) == pytest.approx(floor)
        assert policy.sweep_tol(1e-2) == 1e-2

    def test_dict_round_trip(self):
        policy = resolve_precision("mixed")
        assert DTypePolicy.from_dict(policy.to_dict()) == policy
        assert DTypePolicy.from_dict(None).is_default

    def test_precision_choices_all_resolve(self):
        for choice in PRECISION_CHOICES:
            resolve_precision(choice)


# -- alternative backends (import-gated) -------------------------------------

requires_strict = pytest.mark.skipif(
    importlib.util.find_spec("array_api_strict") is None,
    reason="array_api_strict not installed",
)
requires_torch = pytest.mark.skipif(
    importlib.util.find_spec("torch") is None,
    reason="torch not installed",
)


@requires_strict
class TestArrayApiStrict:
    """Kernel portability under the conformance namespace.

    ``array_api_strict`` implements exactly the standard — no einsum,
    no ``order="F"`` reshape — so these tests lock in that the kernels
    only lean on the dispatch layer for the gaps.
    """

    @pytest.fixture
    def xp_strict(self):
        import array_api_strict

        return array_api_strict

    def test_namespace_resolution(self, xp_strict):
        array = xp_strict.asarray([1.0, 2.0])
        xp = array_namespace(array)
        assert not is_numpy_namespace(xp)
        assert to_numpy(xp.asarray([3.0])).dtype == np.float64

    def test_khatri_rao_matches_numpy(self, rng, xp_strict):
        from repro.tensor.products import khatri_rao

        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((5, 3))
        expected = khatri_rao(a, b)
        strict = khatri_rao(xp_strict.asarray(a), xp_strict.asarray(b))
        np.testing.assert_allclose(to_numpy(strict), expected, rtol=1e-13)

    def test_unfold_fold_round_trip(self, rng, xp_strict):
        from repro.tensor.dense import fold, unfold

        tensor = rng.standard_normal((3, 4, 5))
        strict_tensor = xp_strict.asarray(tensor)
        for mode in range(3):
            expected = unfold(tensor, mode)
            strict = unfold(strict_tensor, mode)
            np.testing.assert_allclose(
                to_numpy(strict), expected, rtol=1e-13
            )
            back = fold(strict, mode, (3, 4, 5))
            np.testing.assert_allclose(to_numpy(back), tensor, rtol=1e-13)


@requires_torch
class TestTorchBackend:
    """Torch leg: skips cleanly when torch is absent."""

    @pytest.fixture
    def torch(self):
        import torch

        return torch

    def test_namespace_resolution_and_bridge(self, torch):
        tensor = torch.arange(6, dtype=torch.float64)
        out = to_numpy(tensor)
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, np.arange(6.0))

    def test_khatri_rao_matches_numpy(self, rng, torch):
        from repro.tensor.products import khatri_rao

        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((5, 3))
        expected = khatri_rao(a, b)
        result = khatri_rao(torch.from_numpy(a), torch.from_numpy(b))
        np.testing.assert_allclose(to_numpy(result), expected, rtol=1e-12)
