"""End-to-end tests for the mixed-precision policy.

Covers the acceptance gates of the backend-dispatch PR:

* float64 fits are **bit-for-bit** unchanged by the policy machinery
  (``precision=None`` and ``precision="float64"`` take the exact
  pre-policy code path);
* mixed-precision fits agree with float64 fits to ≤1e-4 in canonical
  correlations on well-conditioned data, and dense≡implicit agreement
  holds under the policy;
* the policy round-trips through persistence (factor dtypes and
  ``dtype_policy_`` survive save/load, transform honours the recorded
  compute dtype);
* shards/accumulators of different accumulation dtypes refuse to merge
  with a clear error, at every layer (streaming accumulator, engine
  moment state, ``reduce_shards``).
"""

import os

import numpy as np
import pytest

from repro.api import load_model, save_model
from repro.artifacts.distributed import reduce_shards
from repro.artifacts.moments import save_moments, shard_config
from repro.core.engine import MomentState
from repro.core.tcca import TCCA
from repro.exceptions import ValidationError
from repro.streaming.covariance import (
    StreamingCovariance,
    StreamingCovarianceTensor,
    accumulate_outer_sum,
)


@pytest.fixture
def conditioned_views():
    """Three views driven by two well-separated latent factors.

    Both leading canonical components are determined by signal rather
    than noise, so fits from different precisions (and solvers) land on
    the same optimum instead of wandering an ALS swamp.
    """
    rng = np.random.default_rng(42)
    n_samples = 2000
    z1 = rng.standard_normal(n_samples)
    z2 = rng.standard_normal(n_samples)
    views = []
    for dim in (8, 7, 6):
        mixing = rng.standard_normal((dim, 2))
        views.append(
            mixing @ np.vstack([z1, 0.6 * z2])
            + 0.3 * rng.standard_normal((dim, n_samples))
        )
    return views


class TestFloat64Unchanged:
    def test_precision_none_and_float64_are_identical(self, conditioned_views):
        a = TCCA(n_components=2, random_state=0).fit(conditioned_views)
        b = TCCA(
            n_components=2, random_state=0, precision="float64"
        ).fit(conditioned_views)
        np.testing.assert_array_equal(a.correlations_, b.correlations_)
        for left, right in zip(a.canonical_vectors_, b.canonical_vectors_):
            np.testing.assert_array_equal(left, right)

    def test_float64_policy_recorded_in_header(
        self, conditioned_views, tmp_path
    ):
        model = TCCA(n_components=2, random_state=0).fit(conditioned_views)
        assert model.dtype_policy_ == {
            "compute_dtype": "float64",
            "accumulate_dtype": "float64",
            "polish": False,
        }


class TestMixedAgreement:
    def test_mixed_matches_float64_correlations(self, conditioned_views):
        exact = TCCA(n_components=2, random_state=0).fit(conditioned_views)
        mixed = TCCA(
            n_components=2, random_state=0, precision="mixed"
        ).fit(conditioned_views)
        np.testing.assert_allclose(
            mixed.correlations_, exact.correlations_, atol=1e-4
        )
        # the polish pass reports correlations in float64 regardless
        assert mixed.correlations_.dtype == np.float64

    def test_dense_implicit_agreement_float64(self, conditioned_views):
        dense = TCCA(
            n_components=2, random_state=0, solver="dense"
        ).fit(conditioned_views)
        implicit = TCCA(
            n_components=2, random_state=0, solver="implicit"
        ).fit(conditioned_views)
        np.testing.assert_allclose(
            dense.correlations_, implicit.correlations_, atol=1e-8
        )

    def test_dense_implicit_agreement_mixed(self, conditioned_views):
        dense = TCCA(
            n_components=2,
            random_state=0,
            solver="dense",
            precision="mixed",
        ).fit(conditioned_views)
        implicit = TCCA(
            n_components=2,
            random_state=0,
            solver="implicit",
            precision="mixed",
        ).fit(conditioned_views)
        np.testing.assert_allclose(
            dense.correlations_, implicit.correlations_, atol=1e-4
        )

    def test_mixed_canonical_vectors_are_float32(self, conditioned_views):
        mixed = TCCA(
            n_components=2, random_state=0, precision="mixed"
        ).fit(conditioned_views)
        for vectors in mixed.canonical_vectors_:
            assert vectors.dtype == np.float32

    def test_invalid_precision_rejected_eagerly(self):
        with pytest.raises(ValidationError, match="precision"):
            TCCA(precision="double")


class TestPersistenceRoundTrip:
    def test_mixed_model_round_trips(self, conditioned_views, tmp_path):
        model = TCCA(
            n_components=2, random_state=0, precision="mixed"
        ).fit(conditioned_views)
        path = tmp_path / "mixed.npz"
        save_model(model, path)
        loaded = load_model(path, verify=True)
        assert loaded.precision == "mixed"
        assert loaded.dtype_policy_ == model.dtype_policy_
        for saved, restored in zip(
            model.canonical_vectors_, loaded.canonical_vectors_
        ):
            assert restored.dtype == saved.dtype
            np.testing.assert_array_equal(restored, saved)

    def test_transform_uses_recorded_compute_dtype(
        self, conditioned_views, tmp_path
    ):
        model = TCCA(
            n_components=2, random_state=0, precision="mixed"
        ).fit(conditioned_views)
        path = tmp_path / "mixed.npz"
        save_model(model, path)
        loaded = load_model(path)
        projections = loaded.transform(conditioned_views)
        assert all(p.dtype == np.float32 for p in projections)
        exact = TCCA(n_components=2, random_state=0).fit(conditioned_views)
        assert all(
            p.dtype == np.float64
            for p in exact.transform(conditioned_views)
        )


class TestMergeDtypeGuards:
    def _views(self, rng, n=60):
        return tuple(rng.standard_normal((d, n)) for d in (5, 4, 3))

    def test_streaming_covariance_refuses_mixed_dtypes(self, rng):
        a = StreamingCovariance()
        b = StreamingCovariance(dtype=np.float32)
        a.update(rng.standard_normal((20, 4)))
        b.update(rng.standard_normal((20, 4)).astype(np.float32))
        with pytest.raises(ValidationError, match="same dtype"):
            a.merge(b)

    def test_streaming_tensor_refuses_mixed_dtypes(self, rng):
        a = StreamingCovarianceTensor()
        b = StreamingCovarianceTensor(dtype=np.float32)
        a.update(self._views(rng))
        b.update(
            tuple(v.astype(np.float32) for v in self._views(rng))
        )
        with pytest.raises(ValidationError, match="dtype"):
            a.merge(b)

    def test_moment_state_refuses_mixed_dtypes(self, rng):
        a = MomentState(track_tensor=True)
        b = MomentState(track_tensor=True, dtype=np.float32)
        a.update(self._views(rng))
        b.update(tuple(v.astype(np.float32) for v in self._views(rng)))
        with pytest.raises(ValidationError, match="accumulate_dtype"):
            a.merge(b)

    def test_reduce_rejects_mixed_dtype_shards(self, rng, tmp_path):
        views = self._views(rng, n=100)
        m64 = MomentState(track_tensor=True)
        m64.update(tuple(v[:, :50] for v in views))
        m32 = MomentState(track_tensor=True, dtype=np.float32)
        m32.update(
            tuple(v[:, 50:].astype(np.float32) for v in views)
        )
        p64 = tmp_path / "s64.moments"
        p32 = tmp_path / "s32.moments"
        save_moments(m64, p64, estimator="tcca", params={"n_components": 2})
        save_moments(m32, p32, estimator="tcca", params={"n_components": 2})
        with pytest.raises(ValidationError, match="accumulate_dtype"):
            reduce_shards([os.fspath(p64), os.fspath(p32)])

    def test_shard_config_carries_accumulate_dtype(self, rng, tmp_path):
        state = MomentState(track_tensor=True, dtype=np.float32)
        state.update(tuple(v.astype(np.float32) for v in self._views(rng)))
        path = tmp_path / "s.moments"
        save_moments(state, path, estimator="tcca", params={})
        from repro.artifacts.io import read_artifact

        header, payload = read_artifact(path)
        payload.close()
        assert shard_config(header)["accumulate_dtype"] == "float32"
        # pre-policy shards (no dtype key) read as implicit float64
        legacy = dict(header, moments=dict(header["moments"]))
        legacy["moments"].pop("dtype")
        assert shard_config(legacy)["accumulate_dtype"] == "float64"


class TestDtypeAwareAccumulation:
    def test_state_dict_round_trip_preserves_dtype(self, rng):
        state = MomentState(track_tensor=True, dtype=np.float32)
        views = tuple(
            rng.standard_normal((d, 40)).astype(np.float32)
            for d in (5, 4, 3)
        )
        state.update(views)
        meta, arrays = state.state_dict()
        restored = MomentState.from_state_dict(meta, arrays)
        assert restored.dtype == np.float32
        np.testing.assert_allclose(
            np.asarray(restored.tensor(), dtype=np.float64),
            np.asarray(state.tensor(), dtype=np.float64),
            rtol=1e-6,
        )

    def test_outer_sum_budget_is_byte_denominated(self, rng):
        """A tiny budget still yields exact chunked accumulation in
        both dtypes — the float32 path walks twice the rows per block
        but the result is the full-batch contraction either way."""
        chunks = [rng.standard_normal((d, 64)) for d in (4, 3, 2)]
        expected = accumulate_outer_sum(
            np.zeros((4, 6)), chunks, buffer_floats=1 << 20
        )
        small = accumulate_outer_sum(
            np.zeros((4, 6)), chunks, buffer_floats=8
        )
        np.testing.assert_allclose(small, expected, rtol=1e-10)
        single = [c.astype(np.float32) for c in chunks]
        out32 = accumulate_outer_sum(
            np.zeros((4, 6), dtype=np.float32), single, buffer_floats=8
        )
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, expected, rtol=1e-4)
