"""Unit tests for Kronecker and Khatri-Rao products."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, ValidationError
from repro.tensor.products import khatri_rao, kronecker


class TestKronecker:
    def test_matches_numpy_kron(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((4, 2))
        np.testing.assert_allclose(kronecker([a, b]), np.kron(a, b))

    def test_three_factors_associative(self, rng):
        mats = [rng.standard_normal((2, 2)) for _ in range(3)]
        np.testing.assert_allclose(
            kronecker(mats), np.kron(np.kron(mats[0], mats[1]), mats[2])
        )

    def test_identity_factor(self, rng):
        a = rng.standard_normal((2, 3))
        result = kronecker([np.eye(2), a])
        assert result.shape == (4, 6)
        np.testing.assert_allclose(result[:2, :3], a)

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            kronecker([])

    def test_non_2d_raises(self):
        with pytest.raises(ShapeError):
            kronecker([np.ones(3)])

    def test_mixed_product_property(self, rng):
        # (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((4, 2))
        c, d = rng.standard_normal((3, 2)), rng.standard_normal((2, 5))
        np.testing.assert_allclose(
            kronecker([a, b]) @ kronecker([c, d]),
            kronecker([a @ c, b @ d]),
        )


class TestKhatriRao:
    def test_columns_are_kronecker(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((5, 4))
        result = khatri_rao([a, b])
        assert result.shape == (15, 4)
        for r in range(4):
            np.testing.assert_allclose(
                result[:, r], np.kron(a[:, r], b[:, r])
            )

    def test_three_factors(self, rng):
        mats = [rng.standard_normal((s, 3)) for s in (2, 3, 4)]
        result = khatri_rao(mats)
        assert result.shape == (24, 3)
        for r in range(3):
            np.testing.assert_allclose(
                result[:, r],
                np.kron(np.kron(mats[0][:, r], mats[1][:, r]), mats[2][:, r]),
            )

    def test_single_matrix_unchanged(self, rng):
        a = rng.standard_normal((3, 2))
        np.testing.assert_allclose(khatri_rao([a]), a)

    def test_column_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            khatri_rao(
                [rng.standard_normal((3, 2)), rng.standard_normal((3, 4))]
            )

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            khatri_rao([])

    def test_gram_is_hadamard_of_grams(self, rng):
        # (A ⊙ B)^T (A ⊙ B) = (A^T A) * (B^T B)
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((5, 3))
        kr = khatri_rao([a, b])
        np.testing.assert_allclose(kr.T @ kr, (a.T @ a) * (b.T @ b))
