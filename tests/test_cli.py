"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _parse_override, build_parser, main


class TestParseOverride:
    def test_int_value(self):
        assert _parse_override("n_samples=500") == ("n_samples", 500)

    def test_tuple_value(self):
        assert _parse_override("dims=(5, 10)") == ("dims", (5, 10))

    def test_string_fallback(self):
        assert _parse_override("workload=secstr") == ("workload", "secstr")

    def test_missing_equals_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_override("n_samples")


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_overrides(self):
        args = build_parser().parse_args(
            ["run", "tab2", "--override", "n_samples=300"]
        )
        assert args.experiment_id == "tab2"
        assert dict(args.override) == {"n_samples": 300}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_stream_flags(self):
        args = build_parser().parse_args(
            ["run", "fig7", "--stream", "--chunk-size", "128"]
        )
        assert args.stream is True
        assert args.chunk_size == 128
        defaults = build_parser().parse_args(["run", "fig7"])
        assert defaults.stream is False
        assert defaults.chunk_size is None


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig3", "fig10", "tab1", "tab4"):
            assert experiment_id in out

    def test_run_tiny_complexity_experiment(self, capsys):
        code = main(
            [
                "run",
                "fig8",
                "--override",
                "n_samples=150",
                "--override",
                "dims=(3,)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TCCA" in out

    def test_run_tiny_complexity_experiment_streaming(self, capsys):
        code = main(
            [
                "run",
                "fig8",
                "--stream",
                "--chunk-size",
                "64",
                "--override",
                "n_samples=150",
                "--override",
                "dims=(3,)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TCCA-STREAM" in out
        assert "chunk_size=64" in out
