"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _parse_override, build_parser, main


class TestParseOverride:
    def test_int_value(self):
        assert _parse_override("n_samples=500") == ("n_samples", 500)

    def test_tuple_value(self):
        assert _parse_override("dims=(5, 10)") == ("dims", (5, 10))

    def test_string_fallback(self):
        assert _parse_override("workload=secstr") == ("workload", "secstr")

    def test_missing_equals_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_override("n_samples")


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_overrides(self):
        args = build_parser().parse_args(
            ["run", "tab2", "--override", "n_samples=300"]
        )
        assert args.experiment_id == "tab2"
        assert dict(args.override) == {"n_samples": 300}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_stream_flags(self):
        args = build_parser().parse_args(
            ["run", "fig7", "--stream", "--chunk-size", "128"]
        )
        assert args.stream is True
        assert args.chunk_size == 128
        defaults = build_parser().parse_args(["run", "fig7"])
        assert defaults.stream is False
        assert defaults.chunk_size is None


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig3", "fig10", "tab1", "tab4"):
            assert experiment_id in out

    def test_run_tiny_complexity_experiment(self, capsys):
        code = main(
            [
                "run",
                "fig8",
                "--override",
                "n_samples=150",
                "--override",
                "dims=(3,)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TCCA" in out

    def test_run_tiny_complexity_experiment_streaming(self, capsys):
        code = main(
            [
                "run",
                "fig8",
                "--stream",
                "--chunk-size",
                "64",
                "--override",
                "n_samples=150",
                "--override",
                "dims=(3,)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TCCA-STREAM" in out
        assert "chunk_size=64" in out


class TestEstimatorsCommand:
    def test_lists_reducers_and_classifiers(self, capsys):
        assert main(["estimators"]) == 0
        out = capsys.readouterr().out
        for name in ("tcca", "ktcca", "cca", "dse", "rls", "knn"):
            assert name in out


class TestModelCommands:
    """End-to-end fit -> transform -> predict on saved model files."""

    def _write_data(self, path, n_samples=80):
        import numpy as np

        from repro.datasets import make_multiview_latent

        data = make_multiview_latent(
            n_samples=n_samples, dims=(8, 7, 6), random_state=3
        )
        entries = {
            f"view{p}": view for p, view in enumerate(data.views)
        }
        entries["labels"] = data.labels
        with open(path, "wb") as handle:
            np.savez(handle, **entries)
        return data

    def test_fit_transform_predict_loop(self, tmp_path, capsys):
        import numpy as np

        data_path = tmp_path / "data.npz"
        model_path = tmp_path / "model.npz"
        out_path = tmp_path / "predictions.npy"
        data = self._write_data(data_path)

        assert main([
            "fit", "tcca", "--data", str(data_path),
            "--param", "n_components=2", "--param", "random_state=0",
            "--classifier", "rls", "--out", str(model_path),
        ]) == 0
        assert "pipeline[tcca -> rls]" in capsys.readouterr().out
        assert model_path.exists()

        assert main([
            "transform", str(model_path), "--data", str(data_path),
        ]) == 0
        assert "-> 6 dimensions" in capsys.readouterr().out

        assert main([
            "predict", str(model_path), "--data", str(data_path),
            "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out
        predictions = np.load(out_path)
        assert predictions.shape == data.labels.shape

    def test_fit_and_predict_on_synthetic_are_reproducible(
        self, tmp_path, capsys
    ):
        model_path = tmp_path / "model.npz"
        assert main([
            "fit", "maxvar", "--synthetic", "120",
            "--param", "n_components=2",
            "--classifier", "knn", "--out", str(model_path),
        ]) == 0
        capsys.readouterr()
        # same --synthetic/--seed draws the same dataset on the serve side
        assert main([
            "predict", str(model_path), "--synthetic", "120",
        ]) == 0
        assert "accuracy:" in capsys.readouterr().out

    def test_fit_reducer_only_then_predict_fails_cleanly(
        self, tmp_path, capsys
    ):
        model_path = tmp_path / "reducer.npz"
        assert main([
            "fit", "tcca", "--synthetic", "100",
            "--param", "n_components=2", "--out", str(model_path),
        ]) == 0
        assert main(["predict", str(model_path), "--synthetic", "100"]) == 2
        assert "pipeline" in capsys.readouterr().err

    def test_single_view_reducer_rejected_up_front(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "fit", "pca", "--synthetic", "60",
                "--out", str(tmp_path / "m.npz"),
            ])
        assert "single-view" in capsys.readouterr().err

    def test_unknown_reducer_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "fit", "nope", "--synthetic", "100",
            "--out", str(tmp_path / "m.npz"),
        ])
        assert code == 2
        assert "unknown reducer" in capsys.readouterr().err

    def test_data_and_synthetic_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "fit", "tcca", "--synthetic", "10",
                "--data", "x.npz", "--out", str(tmp_path / "m.npz"),
            ])

    def test_missing_data_source_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fit", "tcca", "--out", str(tmp_path / "m.npz")])


class TestUpdateCommand:
    def _fit_incremental(self, tmp_path, *extra):
        model = str(tmp_path / "model.npz")
        code = main(
            [
                "fit", "tcca", "--incremental",
                "--synthetic", "160", "--seed", "1",
                "--param", "n_components=2", "--param", "random_state=0",
                *extra,
                "--out", model,
            ]
        )
        assert code == 0
        return model

    def test_update_loop_accumulates_and_serves(self, tmp_path, capsys):
        model = self._fit_incremental(tmp_path)
        assert main(["update", model, "--synthetic", "90", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "250 accumulated" in out
        assert "sweeps" in out
        # the updated (overwritten) model still transforms new data
        assert main(["transform", model, "--synthetic", "40", "--seed", "3"]) == 0
        assert "40 samples" in capsys.readouterr().out

    def test_update_pipeline_with_out_path(self, tmp_path, capsys):
        model = self._fit_incremental(tmp_path, "--classifier", "rls")
        updated = str(tmp_path / "updated.npz")
        code = main(
            ["update", model, "--synthetic", "90", "--seed", "2",
             "--out", updated]
        )
        assert code == 0
        assert "250 accumulated" in capsys.readouterr().out
        assert main(["predict", updated, "--synthetic", "30", "--seed", "4"]) == 0
        assert "predicted 30 labels" in capsys.readouterr().out

    def test_update_rejects_non_incremental_model(self, tmp_path, capsys):
        model = str(tmp_path / "plain.npz")
        assert main(
            ["fit", "tcca", "--synthetic", "80", "--out", model]
        ) == 0
        with pytest.raises(SystemExit):
            main(["update", model, "--synthetic", "40"])
        assert "--incremental" in capsys.readouterr().err

    def test_incremental_flag_rejects_non_incremental_reducer(
        self, tmp_path, capsys
    ):
        with pytest.raises(SystemExit):
            main(
                ["fit", "cca", "--incremental", "--synthetic", "80",
                 "--out", str(tmp_path / "m.npz")]
            )
        assert "partial_fit" in capsys.readouterr().err


class TestParallelOptions:
    def test_jobs_flag_parses_and_rejects_zero(self):
        args = build_parser().parse_args(
            ["fit", "tcca", "--synthetic", "80", "--jobs", "-1",
             "--executor", "process", "--out", "m.npz"]
        )
        assert args.jobs == -1
        assert args.executor == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fit", "tcca", "--synthetic", "80", "--jobs", "0",
                 "--out", "m.npz"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fit", "tcca", "--synthetic", "80", "--executor", "gpu",
                 "--out", "m.npz"]
            )

    def test_fit_with_jobs_persists_parallel_config(self, tmp_path, capsys):
        from repro.api import load_model

        model = str(tmp_path / "parallel.npz")
        code = main(
            ["fit", "tcca", "--synthetic", "120", "--jobs", "2",
             "--executor", "thread", "--param", "n_components=2",
             "--param", "random_state=0", "--out", model]
        )
        assert code == 0
        assert "120 samples" in capsys.readouterr().out
        loaded = load_model(model)
        assert loaded.n_jobs == 2
        assert loaded.executor == "thread"

    def test_fit_jobs_rejected_for_non_parallel_reducer(
        self, tmp_path, capsys
    ):
        with pytest.raises(SystemExit):
            main(
                ["fit", "lscca", "--synthetic", "80", "--jobs", "2",
                 "--out", str(tmp_path / "m.npz")]
            )
        err = capsys.readouterr().err
        assert "does not accept" in err and "n_jobs" in err

    def test_update_with_jobs(self, tmp_path, capsys):
        model = str(tmp_path / "inc.npz")
        assert main(
            ["fit", "tcca", "--incremental", "--synthetic", "160",
             "--out", model]
        ) == 0
        capsys.readouterr()
        code = main(
            ["update", model, "--synthetic", "90", "--seed", "2",
             "--jobs", "2"]
        )
        assert code == 0
        assert "250 accumulated" in capsys.readouterr().out

    def test_run_jobs_env_is_scoped_to_the_run(self, monkeypatch, capsys):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code = main(
            ["run", "fig8", "--jobs", "2", "--override", "n_samples=150",
             "--override", "dims=(3,)"]
        )
        assert code == 0
        assert "TCCA" in capsys.readouterr().out
        # the default is scoped to the experiment run, not leaked into
        # the process for later fits
        assert "REPRO_JOBS" not in os.environ


class TestPrecisionOption:
    """The ``--precision`` shorthand on ``fit`` / ``accumulate``."""

    def test_fit_with_precision_records_policy(self, tmp_path, capsys):
        model = str(tmp_path / "mixed.npz")
        assert main(
            ["fit", "tcca", "--synthetic", "200", "--precision", "mixed",
             "--param", "n_components=2", "--out", model]
        ) == 0
        capsys.readouterr()
        from repro.api import load_model

        loaded = load_model(model)
        assert loaded.precision == "mixed"
        assert loaded.dtype_policy_["compute_dtype"] == "float32"

        assert main(["verify", model]) == 0
        out = capsys.readouterr().out
        assert "dtype policy" in out
        assert "compute=float32" in out

        assert main(["inspect", model]) == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["dtype_policy"]["accumulate_dtype"] == "float64"

    def test_precision_param_conflict_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                ["fit", "tcca", "--synthetic", "100",
                 "--precision", "mixed", "--param", "precision=float32",
                 "--out", str(tmp_path / "m.npz")]
            )
        assert "conflicts" in capsys.readouterr().err

    def test_precision_flag_agreeing_with_param_allowed(self, tmp_path):
        model = str(tmp_path / "agree.npz")
        assert main(
            ["fit", "tcca", "--synthetic", "100",
             "--precision", "mixed", "--param", "precision=mixed",
             "--out", model]
        ) == 0

    def test_accumulate_with_precision_stamps_shard_dtype(
        self, tmp_path, capsys
    ):
        shard = str(tmp_path / "s.moments")
        assert main(
            ["accumulate", "tcca", "--synthetic", "120",
             "--precision", "float32", "--out", shard]
        ) == 0
        capsys.readouterr()
        from repro.artifacts import read_header, shard_config

        config = shard_config(read_header(shard))
        assert config["accumulate_dtype"] == "float32"
        assert config["params"]["precision"] == "float32"
