"""Tests for the kernel feature-map approximations (Nyström + RFF).

Covers the blocked/dtype-aware kernel evaluation, the kernel spec
round-trip, the two feature-map estimators, and the approximate KTCCA
path end to end: agreement with the exact solver as ``k → N``,
determinism, landmark-order invariance, streaming/incremental parity,
and save/load/serve round-trips.
"""

import dataclasses

import numpy as np
import pytest

from repro.api.persistence import load_model, save_model
from repro.core.ktcca import KTCCA
from repro.datasets.nuswide import make_nuswide_like
from repro.exceptions import NotFittedError, ValidationError
from repro.kernels import (
    ExponentialKernel,
    LinearKernel,
    MappedViewStream,
    NystromFeatures,
    RBFKernel,
    RandomFourierFeatures,
    exponential_kernel,
    feature_map_from_state,
    kernel_from_spec,
    kernel_to_spec,
    rbf_kernel,
)
from repro.serve.model_manager import ModelManager
from repro.streaming.views import ArrayViewStream


def _views(n_samples=80, dims=(7, 6, 5), seed=0):
    rng = np.random.default_rng(seed)
    latent = rng.standard_normal((3, n_samples))
    return [
        rng.standard_normal((d, 3)) @ latent
        + 0.1 * rng.standard_normal((d, n_samples))
        for d in dims
    ]


@pytest.fixture(scope="module")
def fig6_data():
    """A small fig6/table4-style dataset (3 views, BoW first)."""
    return make_nuswide_like(60, random_state=0)


# -- blocked / dtype-aware kernel evaluation ---------------------------------


class TestBlockedKernels:
    def setup_method(self):
        rng = np.random.default_rng(3)
        self.a = rng.standard_normal((6, 40))
        self.b = rng.standard_normal((6, 23))
        self.ha = np.abs(rng.standard_normal((6, 40)))
        self.hb = np.abs(rng.standard_normal((6, 23)))

    @pytest.mark.parametrize("block_size", [1, 5, 23, 100])
    def test_rbf_blocked_matches(self, block_size):
        full = rbf_kernel(self.a, self.b, gamma=0.3)
        blocked = rbf_kernel(self.a, self.b, gamma=0.3, block_size=block_size)
        np.testing.assert_allclose(blocked, full, rtol=1e-13, atol=1e-15)

    @pytest.mark.parametrize("block_size", [1, 7, 23, 64])
    def test_exponential_blocked_matches_fixed_bandwidth(self, block_size):
        full = exponential_kernel(self.a, self.b, bandwidth=2.0)
        blocked = exponential_kernel(
            self.a, self.b, bandwidth=2.0, block_size=block_size
        )
        np.testing.assert_allclose(blocked, full, rtol=1e-13, atol=1e-15)

    @pytest.mark.parametrize("distance", ["euclidean", "chi2"])
    def test_exponential_blocked_matches_max_d_bandwidth(self, distance):
        a, b = (self.ha, self.hb) if distance == "chi2" else (self.a, self.b)
        full = exponential_kernel(a, b, distance=distance)
        blocked = exponential_kernel(a, b, distance=distance, block_size=6)
        np.testing.assert_allclose(blocked, full, rtol=1e-13, atol=1e-15)

    def test_degenerate_bandwidth_blocked(self):
        same = np.ones((4, 9))
        out = exponential_kernel(same, same, block_size=2)
        np.testing.assert_array_equal(out, np.ones((9, 9)))

    def test_dtype_output_float32(self):
        out = rbf_kernel(self.a, self.b, gamma=0.5, dtype=np.float32)
        assert out.dtype == np.float32
        ref = rbf_kernel(self.a, self.b, gamma=0.5)
        np.testing.assert_allclose(out, ref, atol=1e-6)
        exp = exponential_kernel(
            self.a, self.b, dtype="float32", block_size=8
        )
        assert exp.dtype == np.float32

    def test_kernel_objects_forward_block_size_and_dtype(self):
        kernel = RBFKernel(gamma=0.4, block_size=7)
        np.testing.assert_allclose(
            kernel(self.a, self.b),
            rbf_kernel(self.a, self.b, gamma=0.4),
            rtol=1e-13,
        )
        assert kernel(self.a, self.b, dtype=np.float32).dtype == np.float32
        exp = ExponentialKernel(bandwidth=1.5, block_size=5)
        np.testing.assert_allclose(
            exp(self.a, self.b),
            exponential_kernel(self.a, self.b, bandwidth=1.5),
            rtol=1e-13,
        )
        linear = LinearKernel()
        assert linear(self.a, self.b, dtype=np.float32).dtype == np.float32

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValidationError):
            rbf_kernel(self.a, self.b, block_size=0)


class TestKernelSpecs:
    def test_from_spec_names_and_dicts(self):
        assert isinstance(kernel_from_spec("linear"), LinearKernel)
        rbf = kernel_from_spec({"kind": "rbf", "gamma": 0.5})
        assert isinstance(rbf, RBFKernel) and rbf.gamma == 0.5
        exp = kernel_from_spec({"kind": "exponential", "distance": "chi2"})
        assert isinstance(exp, ExponentialKernel) and exp.distance == "chi2"

    def test_from_spec_passes_callables_through(self):
        kernel = RBFKernel(gamma=2.0)
        assert kernel_from_spec(kernel) is kernel

    def test_from_spec_rejects_unknown(self):
        with pytest.raises(ValidationError):
            kernel_from_spec("polynomial")
        with pytest.raises(ValidationError):
            kernel_from_spec({"kind": "rbf", "nope": 1})
        with pytest.raises(ValidationError):
            kernel_from_spec(42)

    def test_to_spec_records_fitted_bandwidth(self):
        view = np.random.default_rng(0).standard_normal((4, 30))
        kernel = ExponentialKernel().fit(view)
        spec = kernel_to_spec(kernel)
        assert spec["bandwidth"] == pytest.approx(kernel._fitted_bandwidth)
        rebuilt = kernel_from_spec(spec)
        np.testing.assert_array_equal(rebuilt(view, view), kernel(view, view))

    def test_to_spec_rejects_custom_callables(self):
        with pytest.raises(ValidationError):
            kernel_to_spec(lambda a, b=None: a.T @ a)


# -- feature maps -------------------------------------------------------------


class TestNystromFeatures:
    def test_k_equals_n_reproduces_kernel_gram(self):
        view = _views()[0]
        kernel = ExponentialKernel()
        fmap = NystromFeatures(kernel, n_features=view.shape[1], random_state=0)
        features = fmap.fit_transform(view)
        kernel.fit(view)
        np.testing.assert_allclose(
            features.T @ features, kernel(view, view), atol=1e-8
        )

    def test_gram_error_shrinks_with_k(self):
        view = _views(n_samples=120)[0]
        kernel_spec = {"kind": "rbf", "gamma": 0.05}
        exact = kernel_from_spec(kernel_spec)(view, view)
        errors = []
        for k in (4, 16, 64, 120):
            fmap = NystromFeatures(kernel_spec, n_features=k, random_state=0)
            features = fmap.fit_transform(view)
            errors.append(np.abs(features.T @ features - exact).max())
        assert errors[-1] < 1e-8
        assert errors[-1] <= errors[0]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_deterministic_under_random_state(self, seed):
        view = _views()[0]
        one = NystromFeatures("rbf", n_features=16, random_state=seed).fit(view)
        two = NystromFeatures("rbf", n_features=16, random_state=seed).fit(view)
        np.testing.assert_array_equal(one.landmarks_, two.landmarks_)
        np.testing.assert_array_equal(one.weights_, two.weights_)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feature_gram_invariant_to_landmark_order(self, seed):
        view, other = _views(seed=seed)[:2]
        other = np.random.default_rng(seed + 10).standard_normal(
            (view.shape[0], 15)
        )
        fmap = NystromFeatures(
            {"kind": "rbf", "gamma": 0.1}, n_features=12, random_state=seed
        )
        plan = fmap.begin_fit(view.shape[0], view.shape[1])
        permutation = np.random.default_rng(seed).permutation(
            plan.landmark_indices.size
        )
        shuffled_plan = dataclasses.replace(
            plan,
            landmark_indices=plan.landmark_indices[permutation],
            kernel=kernel_from_spec(fmap.kernel),
        )
        fmap.fit_columns(
            plan, view[:, plan.landmark_indices], view[:, plan.sample_indices]
        )
        shuffled = NystromFeatures(
            {"kind": "rbf", "gamma": 0.1}, n_features=12, random_state=seed
        )
        shuffled.fit_columns(
            shuffled_plan,
            view[:, shuffled_plan.landmark_indices],
            view[:, shuffled_plan.sample_indices],
        )
        phi, phi_shuffled = fmap.transform(view), shuffled.transform(view)
        psi, psi_shuffled = fmap.transform(other), shuffled.transform(other)
        # the feature Gram (all the fit ever sees) is order-invariant
        np.testing.assert_allclose(
            phi.T @ phi, phi_shuffled.T @ phi_shuffled, atol=1e-8
        )
        np.testing.assert_allclose(
            phi.T @ psi, phi_shuffled.T @ psi_shuffled, atol=1e-8
        )

    def test_state_round_trip(self):
        view = _views()[0]
        fmap = NystromFeatures("exponential", n_features=10, random_state=1)
        fmap.fit(view)
        rebuilt = feature_map_from_state(*fmap.state())
        np.testing.assert_array_equal(
            fmap.transform(view), rebuilt.transform(view)
        )

    def test_unfitted_transform_raises(self):
        with pytest.raises(NotFittedError):
            NystromFeatures("rbf", n_features=4).transform(np.eye(3))


class TestRandomFourierFeatures:
    def test_rbf_gram_approximation(self):
        view = _views(n_samples=50)[0]
        gamma = 0.08
        fmap = RandomFourierFeatures(
            {"kind": "rbf", "gamma": gamma}, n_features=6000, random_state=0
        )
        features = fmap.fit_transform(view)
        exact = rbf_kernel(view, view, gamma=gamma)
        # Monte-Carlo estimate: O(1/sqrt(k)) fluctuation around the kernel
        assert np.abs(features.T @ features - exact).max() < 0.1

    def test_exponential_euclidean_gram_approximation(self):
        view = _views(n_samples=50)[0]
        fmap = RandomFourierFeatures(
            {"kind": "exponential", "bandwidth": 4.0},
            n_features=6000,
            random_state=0,
        )
        features = fmap.fit_transform(view)
        exact = exponential_kernel(view, view, bandwidth=4.0)
        assert np.abs(features.T @ features - exact).max() < 0.15

    def test_rejects_non_shift_invariant_kernels(self):
        view = np.abs(_views()[0])
        chi2 = RandomFourierFeatures(
            {"kind": "exponential", "distance": "chi2"}, n_features=8
        )
        with pytest.raises(ValidationError, match="nystrom"):
            chi2.fit(view)
        with pytest.raises(ValidationError, match="nystrom"):
            RandomFourierFeatures("linear", n_features=8).fit(view)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_deterministic_under_random_state(self, seed):
        view = _views()[0]
        one = RandomFourierFeatures(
            "exponential", n_features=32, random_state=seed
        ).fit(view)
        two = RandomFourierFeatures(
            "exponential", n_features=32, random_state=seed
        ).fit(view)
        np.testing.assert_array_equal(one.weights_, two.weights_)
        np.testing.assert_array_equal(one.offsets_, two.offsets_)

    def test_state_round_trip(self):
        view = _views()[0]
        fmap = RandomFourierFeatures("rbf", n_features=12, random_state=2)
        fmap.fit(view)
        rebuilt = feature_map_from_state(*fmap.state())
        np.testing.assert_array_equal(
            fmap.transform(view), rebuilt.transform(view)
        )

    def test_output_dtype_honors_policy(self):
        view = _views()[0]
        fmap = RandomFourierFeatures(
            "rbf", n_features=8, random_state=0, dtype=np.float32
        )
        assert fmap.fit_transform(view).dtype == np.float32


class TestMappedViewStream:
    def test_maps_chunks_and_reports_feature_dims(self):
        views = _views(n_samples=64)
        maps = [
            NystromFeatures("rbf", n_features=6, random_state=i).fit(view)
            for i, view in enumerate(views)
        ]
        stream = MappedViewStream(ArrayViewStream(views, chunk_size=17), maps)
        assert stream.dims == tuple(m.n_features_ for m in maps)
        assert stream.n_samples == 64
        rebuilt = [
            np.hstack(blocks)
            for blocks in zip(*list(stream.chunks()))
        ]
        for fmap, view, got in zip(maps, views, rebuilt):
            np.testing.assert_allclose(got, fmap.transform(view))

    def test_view_count_mismatch_rejected(self):
        views = _views(n_samples=32)
        with pytest.raises(ValidationError):
            MappedViewStream(ArrayViewStream(views), [object()])


# -- KTCCA approximate path ---------------------------------------------------

FIG6_KERNELS = [
    {"kind": "exponential", "distance": "chi2"},
    {"kind": "exponential", "distance": "euclidean"},
    {"kind": "exponential", "distance": "euclidean"},
]


class TestKTCCAApprox:
    def test_nystrom_k_equals_n_matches_exact_on_fig6(self, fig6_data):
        views = fig6_data.views
        n = views[0].shape[1]
        exact = KTCCA(
            n_components=2, kernels=list(FIG6_KERNELS), random_state=0
        ).fit(views)
        approx = KTCCA(
            n_components=2,
            kernels=list(FIG6_KERNELS),
            approx="nystrom",
            n_features=n,
            random_state=0,
        ).fit(views)
        np.testing.assert_allclose(
            approx.correlations_, exact.correlations_, atol=1e-6
        )

    def test_agreement_curve_converges_with_k(self, fig6_data):
        views = fig6_data.views
        n = views[0].shape[1]
        exact = KTCCA(
            n_components=1, kernels=list(FIG6_KERNELS), random_state=0
        ).fit(views)
        errors = []
        for k in (8, 24, n):
            approx = KTCCA(
                n_components=1,
                kernels=list(FIG6_KERNELS),
                approx="nystrom",
                n_features=k,
                random_state=0,
            ).fit(views)
            errors.append(
                float(
                    np.abs(
                        approx.correlations_ - exact.correlations_
                    ).max()
                )
            )
        # monotone within tolerance: each refinement may wiggle by a
        # fraction of the remaining error, never grow past the coarser one
        slack = 0.25 * max(errors) + 1e-9
        assert all(
            later <= earlier + slack
            for earlier, later in zip(errors, errors[1:])
        )
        assert errors[-1] < 1e-6

    def test_rff_converges_statistically(self, fig6_data):
        views = fig6_data.views
        kernels = [{"kind": "exponential", "distance": "euclidean"}] * 3
        exact = KTCCA(
            n_components=1, kernels=list(kernels), random_state=0
        ).fit(views)
        errors = []
        for k in (8, 512):
            approx = KTCCA(
                n_components=1,
                kernels=list(kernels),
                approx="rff",
                n_features=k,
                random_state=0,
            ).fit(views)
            errors.append(
                float(
                    np.abs(approx.correlations_ - exact.correlations_).max()
                )
            )
        assert errors[-1] < errors[0]

    @pytest.mark.parametrize("approx", ["nystrom", "rff"])
    def test_deterministic_under_random_state(self, approx):
        views = _views(n_samples=90)
        fits = [
            KTCCA(
                n_components=2,
                kernels="rbf",
                approx=approx,
                n_features=16,
                random_state=11,
            ).fit(views)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            fits[0].correlations_, fits[1].correlations_
        )
        np.testing.assert_array_equal(
            fits[0].transform_combined(views),
            fits[1].transform_combined(views),
        )

    @pytest.mark.parametrize("approx", ["nystrom", "rff"])
    def test_fit_stream_matches_fit(self, approx):
        views = _views(n_samples=130)
        batch = KTCCA(
            n_components=2,
            kernels="exponential",
            approx=approx,
            n_features=20,
            random_state=5,
        ).fit(views)
        streamed = KTCCA(
            n_components=2,
            kernels="exponential",
            approx=approx,
            n_features=20,
            random_state=5,
        ).fit_stream(views, chunk_size=29)
        np.testing.assert_allclose(
            streamed.correlations_, batch.correlations_, atol=1e-8
        )
        np.testing.assert_allclose(
            streamed.transform_combined(views),
            batch.transform_combined(views),
            atol=1e-8,
        )

    def test_partial_fit_accumulates_and_resumes_after_load(self, tmp_path):
        views = _views(n_samples=120)
        first = [view[:, :70] for view in views]
        second = [view[:, 70:] for view in views]
        resumed = KTCCA(
            n_components=2,
            kernels="rbf",
            approx="nystrom",
            n_features=16,
            random_state=4,
        )
        resumed.partial_fit(first)
        path = tmp_path / "model.npz"
        save_model(resumed, path)
        loaded = load_model(path)
        loaded.partial_fit(second)
        resumed.partial_fit(second)
        assert loaded.moments_.n_samples == 120
        np.testing.assert_allclose(
            loaded.correlations_, resumed.correlations_, atol=1e-12
        )

    def test_single_batch_partial_fit_matches_fit(self):
        views = _views(n_samples=100)
        config = dict(
            n_components=2,
            kernels="rbf",
            approx="nystrom",
            n_features=16,
            random_state=4,
        )
        incremental = KTCCA(**config).partial_fit(views)
        batch = KTCCA(**config).fit(views)
        np.testing.assert_allclose(
            incremental.correlations_, batch.correlations_, atol=1e-10
        )

    def test_transform_train_matches_transform_after_batch_fit(self):
        views = _views(n_samples=70)
        model = KTCCA(
            n_components=2,
            kernels="rbf",
            approx="nystrom",
            n_features=12,
            random_state=0,
        ).fit(views)
        np.testing.assert_allclose(
            model.transform_train_combined(),
            model.transform_combined(views),
            atol=1e-10,
        )

    def test_mixed_precision_records_policy_and_projects_float32(self):
        views = _views(n_samples=90)
        model = KTCCA(
            n_components=2,
            kernels="rbf",
            approx="nystrom",
            n_features=16,
            random_state=0,
            precision="mixed",
        ).fit(views)
        assert model.dtype_policy_["compute_dtype"] == "float32"
        outputs = model.transform(views)
        assert all(output.dtype == np.float32 for output in outputs)
        reference = KTCCA(
            n_components=2,
            kernels="rbf",
            approx="nystrom",
            n_features=16,
            random_state=0,
        ).fit(views)
        np.testing.assert_allclose(
            model.correlations_, reference.correlations_, atol=1e-4
        )

    def test_exact_path_mixed_precision_gram_dtype(self):
        views = _views(n_samples=40)
        model = KTCCA(
            n_components=1, kernels="rbf", precision="mixed", random_state=0
        ).fit(views)
        assert model.dtype_policy_["compute_dtype"] == "float32"
        reference = KTCCA(
            n_components=1, kernels="rbf", random_state=0
        ).fit(views)
        np.testing.assert_allclose(
            model.correlations_, reference.correlations_, rtol=1e-3
        )

    def test_exact_kernel_specs_persist(self, tmp_path):
        views = _views(n_samples=40)
        model = KTCCA(n_components=1, kernels="exponential").fit(views)
        path = tmp_path / "exact.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_allclose(
            np.hstack(loaded.transform(views)),
            np.hstack(model.transform(views)),
            atol=1e-12,
        )

    def test_generator_random_state_rejected_for_approx(self):
        views = _views(n_samples=40)
        model = KTCCA(
            kernels="rbf",
            approx="nystrom",
            n_features=8,
            random_state=np.random.default_rng(0),
        )
        with pytest.raises(ValidationError, match="replayable"):
            model.fit(views)

    def test_error_modes(self):
        views = _views(n_samples=30)
        with pytest.raises(ValidationError, match="n_features"):
            KTCCA(approx="nystrom")
        with pytest.raises(ValidationError, match="n_features"):
            KTCCA(n_features=8)
        with pytest.raises(ValidationError, match="exceeds"):
            KTCCA(approx="rff", n_features=2, n_components=4)
        with pytest.raises(ValidationError, match="precomputed"):
            KTCCA(approx="nystrom", n_features=8).fit(views)
        with pytest.raises(ValidationError, match="center"):
            KTCCA(
                approx="nystrom", n_features=8, kernels="rbf", center=False
            ).fit(views)
        with pytest.raises(ValidationError, match="fit_stream"):
            KTCCA(kernels="rbf").fit_stream(views)
        with pytest.raises(ValidationError, match="partial_fit"):
            KTCCA(kernels="rbf").partial_fit(views)


class TestApproxServe:
    @pytest.mark.parametrize("approx", ["nystrom", "rff"])
    def test_save_load_serve_round_trip(self, tmp_path, approx):
        views = _views(n_samples=80)
        model = KTCCA(
            n_components=2,
            kernels="rbf",
            approx=approx,
            n_features=12,
            random_state=1,
        ).fit(views)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path, verify=True)
        assert loaded.approx == approx
        assert loaded.n_features == 12
        np.testing.assert_array_equal(
            loaded.transform_combined(views), model.transform_combined(views)
        )
        manager = ModelManager(path)
        snapshot = manager.current()
        assert snapshot.approx["kind"] == approx
        assert snapshot.approx["n_features"] == 12
        assert snapshot.view_dims == tuple(
            view.shape[0] for view in views
        )
        info = manager.info()
        assert info["approx"]["feature_dims"] == list(
            model.feature_dims_
        )
        np.testing.assert_array_equal(
            snapshot.model.transform_combined(views),
            model.transform_combined(views),
        )

    def test_exact_model_reports_no_approx(self, tmp_path):
        views = _views(n_samples=30)
        model = KTCCA(n_components=1, kernels="rbf").fit(views)
        path = tmp_path / "exact.npz"
        save_model(model, path)
        assert ModelManager(path).info()["approx"] is None


class TestApproxCLI:
    def test_fit_update_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "model.npz"
        assert main([
            "fit", "ktcca",
            "--synthetic", "120",
            "--approx", "nystrom",
            "--n-features", "16",
            "--param", "kernels=rbf",
            "--param", "n_components=2",
            "--param", "random_state=0",
            "--incremental",
            "--out", str(path),
        ]) == 0
        assert main([
            "update", str(path),
            "--synthetic", "50",
            "--seed", "3",
        ]) == 0
        capsys.readouterr()
        model = load_model(path)
        assert model.approx == "nystrom"
        assert model.moments_.n_samples == 170

    def test_shorthand_conflict_rejected(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main([
                "fit", "ktcca",
                "--synthetic", "40",
                "--approx", "nystrom",
                "--n-features", "8",
                "--param", "approx=rff",
                "--param", "kernels=rbf",
                "--out", str(tmp_path / "x.npz"),
            ])
