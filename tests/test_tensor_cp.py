"""Unit tests for the CPTensor container."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, ValidationError
from repro.tensor.cp import CPTensor, rank1_tensor
from repro.tensor.dense import outer_product, unfold


def _random_cp(rng, shape=(4, 5, 6), rank=3):
    return CPTensor(
        weights=rng.standard_normal(rank),
        factors=[rng.standard_normal((s, rank)) for s in shape],
    )


class TestRank1Tensor:
    def test_matches_outer(self, rng):
        vectors = [rng.standard_normal(s) for s in (3, 4)]
        np.testing.assert_allclose(
            rank1_tensor(vectors, 2.5), 2.5 * outer_product(vectors)
        )


class TestCPTensorBasics:
    def test_shape_rank_order(self, rng):
        cp = _random_cp(rng)
        assert cp.shape == (4, 5, 6)
        assert cp.rank == 3
        assert cp.order == 3

    def test_to_dense_matches_sum_of_outers(self, rng):
        cp = _random_cp(rng)
        expected = sum(
            cp.weights[r]
            * outer_product([factor[:, r] for factor in cp.factors])
            for r in range(cp.rank)
        )
        np.testing.assert_allclose(cp.to_dense(), expected)

    def test_unfold_matches_dense_unfold(self, rng):
        cp = _random_cp(rng)
        dense = cp.to_dense()
        for mode in range(cp.order):
            np.testing.assert_allclose(
                cp.unfold(mode), unfold(dense, mode), atol=1e-12
            )

    def test_unfold_bad_mode(self, rng):
        with pytest.raises(ValidationError):
            _random_cp(rng).unfold(5)

    def test_weights_must_be_1d(self, rng):
        with pytest.raises(ShapeError):
            CPTensor(
                weights=np.ones((2, 2)),
                factors=[np.ones((3, 2))],
            )

    def test_factor_rank_mismatch(self, rng):
        with pytest.raises(ShapeError):
            CPTensor(weights=np.ones(2), factors=[np.ones((3, 4))])

    def test_no_factors_raises(self):
        with pytest.raises(ValidationError):
            CPTensor(weights=np.ones(2), factors=[])


class TestCPNorm:
    def test_norm_matches_dense(self, rng):
        cp = _random_cp(rng)
        assert cp.norm() == pytest.approx(
            np.linalg.norm(cp.to_dense().ravel())
        )

    def test_norm_rank1(self, rng):
        vectors = [rng.standard_normal(s) for s in (3, 4, 5)]
        cp = CPTensor(
            weights=np.array([2.0]),
            factors=[v[:, None] for v in vectors],
        )
        expected = 2.0 * np.prod([np.linalg.norm(v) for v in vectors])
        assert cp.norm() == pytest.approx(expected)


class TestNormalize:
    def test_preserves_dense(self, rng):
        cp = _random_cp(rng)
        normalized = cp.normalize()
        np.testing.assert_allclose(
            normalized.to_dense(), cp.to_dense(), atol=1e-12
        )

    def test_unit_columns(self, rng):
        normalized = _random_cp(rng).normalize()
        for factor in normalized.factors:
            np.testing.assert_allclose(
                np.linalg.norm(factor, axis=0), np.ones(normalized.rank)
            )

    def test_zero_column_stays_zero(self):
        cp = CPTensor(
            weights=np.array([1.0, 1.0]),
            factors=[
                np.array([[1.0, 0.0], [0.0, 0.0]]),
                np.array([[1.0, 0.0], [0.0, 0.0]]),
            ],
        )
        normalized = cp.normalize()
        assert normalized.weights[1] == 0.0


class TestComponent:
    def test_component_roundtrip(self, rng):
        cp = _random_cp(rng)
        weight, vectors = cp.component(1)
        assert weight == pytest.approx(cp.weights[1])
        for mode, vector in enumerate(vectors):
            np.testing.assert_allclose(vector, cp.factors[mode][:, 1])

    def test_component_out_of_range(self, rng):
        with pytest.raises(ValidationError):
            _random_cp(rng).component(7)
