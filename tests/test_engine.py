"""Staged fit engine: incremental partial_fit, mergeable moments, warm starts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import MODEL_FORMAT_VERSION, MultiviewPipeline, load_model, save_model
from repro.api.persistence import read_archive
from repro.core import TCCA
from repro.core import engine
from repro.core.engine import (
    DecompositionSpec,
    MomentState,
    SampleStore,
    whitened_covariance_tensor,
)
from repro.datasets import make_multiview_latent
from repro.exceptions import ShapeError, ValidationError
from repro.tensor.decomposition import cp_als, best_rank1
from repro.tensor.decomposition.init import check_factors_init


@pytest.fixture
def latent_views():
    return make_multiview_latent(n_samples=620, random_state=0).views


def _minibatches(views, edges):
    return [
        [view[:, start:stop] for view in views]
        for start, stop in zip(edges[:-1], edges[1:])
    ]


# ---------------------------------------------------------------------------
# Engine stages
# ---------------------------------------------------------------------------


class TestEngineStages:
    def test_dense_build_matches_whiten_first_path(self, latent_views):
        """M from stored raw moments == M from whitened data, to round-off.

        The cold path whitens the data then accumulates; the incremental
        path accumulates raw moments then mode-multiplies with the
        whiteners (Theorem 2 applied to stored statistics). Multilinearity
        makes them equal in exact arithmetic.
        """
        moments = engine.ingest_stage(
            MomentState(track_tensor=True), latent_views
        )
        whitening = engine.whiten_stage(moments, 1e-2)
        built = engine.build_stage(moments, whitening, "dense")
        cold = whitened_covariance_tensor(latent_views, 1e-2)
        np.testing.assert_allclose(built.tensor, cold.tensor, atol=1e-10)
        for mine, theirs in zip(whitening.whiteners, cold.whiteners):
            np.testing.assert_allclose(mine, theirs, atol=1e-12)

    def test_moment_policies_are_exclusive(self):
        with pytest.raises(ValidationError):
            MomentState(track_tensor=True, retain_samples=True)

    def test_tensor_requires_dense_policy(self, latent_views):
        moments = engine.ingest_stage(
            MomentState(retain_samples=True), latent_views
        )
        with pytest.raises(ValidationError):
            moments.tensor()
        with pytest.raises(ValidationError):
            engine.ingest_stage(
                MomentState(track_tensor=True), latent_views
            ).samples

    def test_ingest_accepts_streams(self, latent_views):
        from repro.streaming import ArrayViewStream

        chunked = engine.ingest_stage(
            MomentState(track_tensor=True),
            ArrayViewStream(latent_views, chunk_size=64),
        )
        batch = engine.ingest_stage(
            MomentState(track_tensor=True), latent_views
        )
        assert chunked.n_samples == batch.n_samples
        np.testing.assert_allclose(
            chunked.tensor(), batch.tensor(), atol=1e-12
        )

    def test_decompose_stage_needs_exactly_one_target(self):
        spec = DecompositionSpec(rank=1)
        with pytest.raises(ValidationError):
            engine.decompose_stage(spec)

    def test_moment_state_merge_matches_sequential(self, latent_views):
        """Shard-parallel moment workers reduce to the single-pass state."""
        batches = _minibatches(latent_views, [0, 150, 151, 400, 620])
        for policy in (
            {"track_tensor": True},
            {"retain_samples": True},
        ):
            sequential = MomentState(**policy)
            merged = MomentState(**policy)
            for batch in batches:
                sequential.update(batch)
                shard = MomentState(**policy)
                shard.update(batch)
                merged.merge(shard)
            merged.merge(MomentState(**policy))  # empty shard is a no-op
            assert merged.n_samples == sequential.n_samples == 620
            for mine, theirs in zip(merged.means(), sequential.means()):
                np.testing.assert_allclose(mine, theirs, atol=1e-12)
            for mine, theirs in zip(
                merged.view_covariances(), sequential.view_covariances()
            ):
                np.testing.assert_allclose(mine, theirs, atol=1e-12)
            if policy.get("track_tensor"):
                np.testing.assert_allclose(
                    merged.tensor(), sequential.tensor(), atol=1e-12
                )
            else:
                for mine, theirs in zip(
                    merged.samples.views, sequential.samples.views
                ):
                    np.testing.assert_array_equal(mine, theirs)

    def test_sample_store_validation(self):
        store = SampleStore()
        store.add([np.zeros((3, 4)), np.zeros((2, 4))])
        with pytest.raises(ValidationError):
            store.add([np.zeros((3, 4)), np.zeros((5, 4))])
        with pytest.raises(ValidationError):
            store.add([np.zeros((3, 4)), np.zeros((2, 5))])
        assert store.n_samples == 4


# ---------------------------------------------------------------------------
# Warm starts (factors_init)
# ---------------------------------------------------------------------------


class TestFactorsInit:
    def test_als_warm_start_from_solution_converges_immediately(
        self, latent_views
    ):
        state = whitened_covariance_tensor(latent_views, 1e-2)
        cold = cp_als(
            state.tensor, 2, tol=1e-12, random_state=0,
            warn_on_no_convergence=False,
        )
        warm = cp_als(
            state.tensor, 2, tol=1e-12,
            factors_init=cold.cp.factors,
            warn_on_no_convergence=False,
        )
        assert warm.n_iterations <= max(3, cold.n_iterations // 4)
        np.testing.assert_allclose(
            np.abs(warm.cp.weights), np.abs(cold.cp.weights), atol=1e-8
        )

    def test_hopm_warm_start(self, latent_views):
        state = whitened_covariance_tensor(latent_views, 1e-2)
        cold = best_rank1(
            state.tensor, tol=1e-12, random_state=0,
            warn_on_no_convergence=False,
        )
        warm = best_rank1(
            state.tensor, tol=1e-12, factors_init=cold.cp.factors,
            warn_on_no_convergence=False,
        )
        assert warm.n_iterations <= cold.n_iterations
        np.testing.assert_allclose(
            warm.cp.weights, cold.cp.weights, atol=1e-10
        )

    def test_factors_init_validation(self):
        with pytest.raises(ValidationError):
            check_factors_init((4, 3), 2, [np.zeros((4, 2))])
        with pytest.raises(ShapeError):
            check_factors_init(
                (4, 3), 2, [np.zeros((4, 2)), np.zeros((3, 1))]
            )
        with pytest.raises(ValidationError):
            check_factors_init(
                (4, 3), 1, [np.full((4, 1), np.nan), np.ones((3, 1))]
            )
        checked = check_factors_init(
            (4, 3), 1, [np.full((4, 1), 2.0), np.ones((3, 1))]
        )
        np.testing.assert_allclose(np.linalg.norm(checked[0]), 1.0)


# ---------------------------------------------------------------------------
# TCCA.partial_fit
# ---------------------------------------------------------------------------


class TestPartialFit:
    @pytest.mark.parametrize("n_views", [2, 3])
    @pytest.mark.parametrize("solver", ["dense", "implicit"])
    def test_matches_cold_fit_on_concatenated_data(self, n_views, solver):
        """Acceptance: partial_fit == cold fit to <= 1e-8 correlations."""
        views = make_multiview_latent(n_samples=620, random_state=1).views
        views = views[:n_views]
        cold = TCCA(
            n_components=3, random_state=0, tol=1e-13, max_iter=2000,
            solver=solver,
        ).fit(views)
        incremental = TCCA(
            n_components=3, random_state=0, tol=1e-13, max_iter=2000,
            solver=solver,
        )
        for batch in _minibatches(views, [0, 200, 201, 500, 620]):
            incremental.partial_fit(batch)
        assert incremental.solver_used_ == solver
        assert incremental.moments_.n_samples == 620
        np.testing.assert_allclose(
            incremental.correlations_, cold.correlations_, atol=1e-8
        )
        for mine, theirs in zip(
            incremental.canonical_vectors_, cold.canonical_vectors_
        ):
            np.testing.assert_allclose(mine, theirs, atol=1e-5)

    def test_hopm_partial_fit(self, latent_views):
        # The refresh is small relative to the accumulated data, so the
        # warm-tracked power iteration stays in the cold solve's basin.
        # (A refresh that *doubles* the data may legitimately track a
        # different — sometimes better — rank-1 critical point.)
        cold = TCCA(
            decomposition="hopm", random_state=0, tol=1e-13
        ).fit(latent_views)
        incremental = TCCA(decomposition="hopm", random_state=0, tol=1e-13)
        for batch in _minibatches(latent_views, [0, 500, 620]):
            incremental.partial_fit(batch)
        np.testing.assert_allclose(
            incremental.correlations_, cold.correlations_, atol=1e-8
        )

    def test_power_decomposition_partial_fit_cold_solves(self, latent_views):
        """The deflation solver has no warm start but still accumulates."""
        cold = TCCA(
            n_components=2, decomposition="power", random_state=0,
        ).fit(latent_views)
        incremental = TCCA(
            n_components=2, decomposition="power", random_state=0,
        )
        for batch in _minibatches(latent_views, [0, 310, 620]):
            incremental.partial_fit(batch)
        np.testing.assert_allclose(
            incremental.correlations_, cold.correlations_, atol=1e-6
        )

    def test_small_refresh_reuses_sweeps(self, latent_views):
        """A small minibatch near the optimum must not cost more sweeps
        than a cold solve — the warm start the engine exists for."""
        base = [view[:, :600] for view in latent_views]
        tail = [view[:, 600:] for view in latent_views]
        cold = TCCA(n_components=2, random_state=0).fit(latent_views)
        incremental = TCCA(n_components=2, random_state=0)
        incremental.partial_fit(base)
        incremental.partial_fit(tail)
        assert (
            incremental.decomposition_result_.n_iterations
            <= cold.decomposition_result_.n_iterations
        )

    def test_transform_after_partial_fit(self, latent_views):
        model = TCCA(n_components=2, random_state=0).partial_fit(
            latent_views
        )
        projections = model.transform(latent_views)
        assert [p.shape for p in projections] == [
            (620, 2) for _ in latent_views
        ]

    def test_dimension_mismatch_rejected(self, latent_views):
        model = TCCA(n_components=1).partial_fit(latent_views)
        with pytest.raises(ValidationError):
            model.partial_fit([view[:-1] for view in latent_views])

    def test_first_partial_fit_after_full_fit_solves_cold(self):
        """A prior one-shot fit must not leak its factors into the warm
        start of a brand-new incremental session on different data."""
        old = make_multiview_latent(n_samples=300, random_state=5).views
        new = make_multiview_latent(n_samples=300, random_state=99).views
        recycled = TCCA(n_components=3, random_state=0, tol=1e-12)
        recycled.fit(old)
        recycled.partial_fit(new)
        fresh = TCCA(n_components=3, random_state=0, tol=1e-12)
        fresh.partial_fit(new)
        np.testing.assert_array_equal(
            recycled.correlations_, fresh.correlations_
        )

    def test_full_fit_resets_the_session(self, latent_views):
        model = TCCA(n_components=1, random_state=0)
        model.partial_fit(latent_views)
        assert hasattr(model, "moments_")
        model.fit(latent_views)
        assert not hasattr(model, "moments_")

    def test_solver_change_cannot_resume_session(self, latent_views):
        model = TCCA(n_components=1, solver="dense", random_state=0)
        model.partial_fit(latent_views)
        model.solver = "implicit"
        with pytest.raises(ValidationError):
            model.partial_fit(latent_views)

    def test_implicit_moments_hold_no_tensor(self, latent_views):
        model = TCCA(n_components=1, solver="implicit", random_state=0)
        model.partial_fit(latent_views)
        assert model.moments_.retain_samples
        assert not model.moments_.track_tensor


# ---------------------------------------------------------------------------
# Persistence of the incremental session
# ---------------------------------------------------------------------------


class TestIncrementalPersistence:
    @pytest.mark.parametrize("solver", ["dense", "implicit"])
    def test_save_load_resumes_bit_exactly(
        self, tmp_path, latent_views, solver
    ):
        path = tmp_path / "model.npz"
        stayed = TCCA(
            n_components=2, random_state=0, tol=1e-12, solver=solver
        )
        stayed.partial_fit([view[:, :400] for view in latent_views])
        save_model(stayed, path)
        resumed = load_model(path)
        tail = [view[:, 400:] for view in latent_views]
        stayed.partial_fit(tail)
        resumed.partial_fit(tail)
        assert resumed.moments_.n_samples == 620
        np.testing.assert_array_equal(
            stayed.correlations_, resumed.correlations_
        )
        for mine, theirs in zip(
            stayed.canonical_vectors_, resumed.canonical_vectors_
        ):
            np.testing.assert_array_equal(mine, theirs)

    def test_header_records_schema_version(self, tmp_path, latent_views):
        path = tmp_path / "model.npz"
        save_model(
            TCCA(n_components=1, random_state=0).partial_fit(latent_views),
            path,
        )
        header, payload = read_archive(path)
        with payload:
            assert header["version"] == MODEL_FORMAT_VERSION == 3
            assert header["state"]["moments_"]["kind"] == "moments"

    def test_plain_fit_persists_without_moments(self, tmp_path, latent_views):
        path = tmp_path / "model.npz"
        save_model(TCCA(n_components=1, random_state=0).fit(latent_views), path)
        header, payload = read_archive(path)
        with payload:
            assert "moments_" not in header["state"]
        assert getattr(load_model(path), "moments_", None) is None


# ---------------------------------------------------------------------------
# Pipeline partial_fit
# ---------------------------------------------------------------------------


class TestPipelinePartialFit:
    def test_incremental_pipeline_tracks_full_fit(self):
        data = make_multiview_latent(n_samples=500, random_state=2)
        pipeline = MultiviewPipeline(
            "tcca", "rls",
            reducer_params={"n_components": 3, "random_state": 0,
                            "tol": 1e-12},
        )
        for start, stop in [(0, 200), (200, 350), (350, 500)]:
            pipeline.partial_fit(
                [view[:, start:stop] for view in data.views],
                data.labels[start:stop],
            )
        full = MultiviewPipeline(
            "tcca", "rls",
            reducer_params={"n_components": 3, "random_state": 0,
                            "tol": 1e-12},
        ).fit(data.views, data.labels)
        incremental_score = pipeline.score(data.views, data.labels)
        full_score = full.score(data.views, data.labels)
        assert incremental_score >= full_score - 0.02

    def test_save_load_continues_the_session(self, tmp_path):
        data = make_multiview_latent(n_samples=400, random_state=3)
        path = tmp_path / "pipeline.npz"
        stayed = MultiviewPipeline(
            "tcca", "rls",
            reducer_params={"n_components": 2, "random_state": 0},
        )
        stayed.partial_fit(
            [view[:, :250] for view in data.views], data.labels[:250]
        )
        stayed.save(path)
        resumed = MultiviewPipeline.load(path)
        tail_views = [view[:, 250:] for view in data.views]
        stayed.partial_fit(tail_views, data.labels[250:])
        resumed.partial_fit(tail_views, data.labels[250:])
        np.testing.assert_array_equal(
            stayed.predict(data.views), resumed.predict(data.views)
        )

    def test_non_incremental_reducer_rejected(self):
        data = make_multiview_latent(n_samples=60, random_state=0)
        pipeline = MultiviewPipeline("cca", "rls")
        with pytest.raises(ValidationError):
            pipeline.partial_fit(data.views[:2], data.labels)

    def test_label_count_validated(self):
        data = make_multiview_latent(n_samples=60, random_state=0)
        pipeline = MultiviewPipeline(
            "tcca", "rls", reducer_params={"n_components": 1}
        )
        with pytest.raises(ValidationError):
            pipeline.partial_fit(data.views, data.labels[:-3])


# ---------------------------------------------------------------------------
# Satellites: repr, transform validation + chunking
# ---------------------------------------------------------------------------


class TestParamsRepr:
    def test_defaults_collapse(self):
        assert repr(TCCA()) == "TCCA()"

    def test_non_default_params_shown(self):
        text = repr(TCCA(n_components=3, epsilon=0.05, solver="implicit"))
        assert text == (
            "TCCA(n_components=3, epsilon=0.05, solver='implicit')"
        )

    def test_every_registered_estimator_has_readable_repr(self):
        from repro.api import (
            available_classifiers,
            available_reducers,
            get_estimator_class,
        )

        for kind, names in (
            ("reducer", available_reducers()),
            ("classifier", available_classifiers()),
        ):
            for name in names:
                cls = get_estimator_class(name, kind)
                text = repr(cls())
                assert text.startswith(f"{cls.__name__}(")
                assert "object at 0x" not in text


class TestTransformValidation:
    def test_shape_error_on_wrong_feature_dims(self, latent_views):
        model = TCCA(n_components=1, random_state=0).fit(latent_views)
        wrong = [view[:-2] for view in latent_views]
        with pytest.raises(ShapeError):
            model.transform(wrong)
        with pytest.raises(ShapeError):
            model.transform(latent_views[:-1])

    def test_chunked_transform_matches_full(self, latent_views):
        model = TCCA(n_components=2, random_state=0).fit(latent_views)
        full = model.transform(latent_views)
        chunked = model.transform(latent_views, chunk_size=97)
        for mine, theirs in zip(chunked, full):
            np.testing.assert_array_equal(mine, theirs)

    def test_chunked_pipeline_transform(self):
        data = make_multiview_latent(n_samples=150, random_state=0)
        pipeline = MultiviewPipeline(
            "tcca", "rls", reducer_params={"n_components": 2}
        ).fit(data.views, data.labels)
        np.testing.assert_array_equal(
            pipeline.transform(data.views, chunk_size=31),
            pipeline.transform(data.views),
        )

    def test_chunk_size_validated(self, latent_views):
        model = TCCA(n_components=1, random_state=0).fit(latent_views)
        with pytest.raises(ValidationError):
            model.transform(latent_views, chunk_size=0)
