"""Unit tests for repro.tensor.dense: unfolding, mode products, norms."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, ValidationError
from repro.tensor.dense import (
    cyclic_mode_order,
    fold,
    frobenius_norm,
    inner_product,
    mode_product,
    multi_mode_product,
    outer_product,
    unfold,
)


class TestCyclicModeOrder:
    def test_order3_mode0(self):
        assert cyclic_mode_order(3, 0) == [1, 2]

    def test_order3_mode1(self):
        assert cyclic_mode_order(3, 1) == [2, 0]

    def test_order3_mode2(self):
        assert cyclic_mode_order(3, 2) == [0, 1]

    def test_order5_wraps(self):
        assert cyclic_mode_order(5, 3) == [4, 0, 1, 2]


class TestUnfoldFold:
    def test_unfold_shape(self, small_tensor):
        assert unfold(small_tensor, 0).shape == (4, 30)
        assert unfold(small_tensor, 1).shape == (5, 24)
        assert unfold(small_tensor, 2).shape == (6, 20)

    def test_roundtrip_all_modes(self, small_tensor):
        for mode in range(3):
            rebuilt = fold(unfold(small_tensor, mode), mode, small_tensor.shape)
            np.testing.assert_allclose(rebuilt, small_tensor)

    def test_roundtrip_order4(self, order4_tensor):
        for mode in range(4):
            rebuilt = fold(
                unfold(order4_tensor, mode), mode, order4_tensor.shape
            )
            np.testing.assert_allclose(rebuilt, order4_tensor)

    def test_unfold_matches_explicit_entries(self):
        tensor = np.arange(24, dtype=float).reshape(2, 3, 4)
        unfolded = unfold(tensor, 0)
        # Column ordering: mode-1 fastest, then mode-2.
        for i2 in range(3):
            for i3 in range(4):
                column = i2 + 3 * i3
                np.testing.assert_allclose(
                    unfolded[:, column], tensor[:, i2, i3]
                )

    def test_unfold_rank1_is_rank1_matrix(self):
        a, b, c = np.arange(3.0), np.arange(1.0, 5.0), np.arange(2.0, 4.0)
        tensor = outer_product([a, b, c])
        for mode in range(3):
            singular_values = np.linalg.svd(
                unfold(tensor, mode), compute_uv=False
            )
            assert np.sum(singular_values > 1e-10) == 1

    def test_unfold_bad_mode_raises(self, small_tensor):
        with pytest.raises(ValidationError):
            unfold(small_tensor, 3)
        with pytest.raises(ValidationError):
            unfold(small_tensor, -1)

    def test_fold_shape_mismatch_raises(self, small_tensor):
        matrix = unfold(small_tensor, 0)
        with pytest.raises(ShapeError):
            fold(matrix, 0, (4, 5, 7))

    def test_fold_bad_mode_raises(self, small_tensor):
        matrix = unfold(small_tensor, 0)
        with pytest.raises(ValidationError):
            fold(matrix, 5, small_tensor.shape)


class TestModeProduct:
    def test_matches_unfolding_identity(self, small_tensor, rng):
        # B = A ×_p U  <=>  B_(p) = U A_(p)
        for mode, size in enumerate(small_tensor.shape):
            matrix = rng.standard_normal((3, size))
            product = mode_product(small_tensor, matrix, mode)
            np.testing.assert_allclose(
                unfold(product, mode), matrix @ unfold(small_tensor, mode)
            )

    def test_vector_contraction_keeps_singleton(self, small_tensor):
        vector = np.ones(small_tensor.shape[1])
        product = mode_product(small_tensor, vector, 1)
        assert product.shape == (4, 1, 6)
        np.testing.assert_allclose(
            product[:, 0, :], small_tensor.sum(axis=1)
        )

    def test_identity_matrix_is_noop(self, small_tensor):
        eye = np.eye(small_tensor.shape[2])
        np.testing.assert_allclose(
            mode_product(small_tensor, eye, 2), small_tensor
        )

    def test_composition_commutes_across_modes(self, small_tensor, rng):
        u0 = rng.standard_normal((2, 4))
        u2 = rng.standard_normal((3, 6))
        one_way = mode_product(mode_product(small_tensor, u0, 0), u2, 2)
        other_way = mode_product(mode_product(small_tensor, u2, 2), u0, 0)
        np.testing.assert_allclose(one_way, other_way)

    def test_same_mode_composes_as_matrix_product(self, small_tensor, rng):
        u = rng.standard_normal((5, 4))
        v = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            mode_product(mode_product(small_tensor, u, 0), v, 0),
            mode_product(small_tensor, v @ u, 0),
        )

    def test_wrong_columns_raises(self, small_tensor):
        with pytest.raises(ShapeError):
            mode_product(small_tensor, np.ones((2, 7)), 0)


class TestMultiModeProduct:
    def test_matches_sequential(self, small_tensor, rng):
        matrices = [
            rng.standard_normal((2, 4)),
            rng.standard_normal((3, 5)),
            rng.standard_normal((2, 6)),
        ]
        expected = small_tensor
        for mode, matrix in enumerate(matrices):
            expected = mode_product(expected, matrix, mode)
        np.testing.assert_allclose(
            multi_mode_product(small_tensor, matrices), expected
        )

    def test_skip_mode(self, small_tensor, rng):
        matrices = [
            rng.standard_normal((2, 4)),
            rng.standard_normal((3, 5)),
            rng.standard_normal((2, 6)),
        ]
        product = multi_mode_product(small_tensor, matrices, skip=1)
        expected = mode_product(
            mode_product(small_tensor, matrices[0], 0), matrices[2], 2
        )
        np.testing.assert_allclose(product, expected)

    def test_mismatched_lengths_raise(self, small_tensor):
        with pytest.raises(ValidationError):
            multi_mode_product(small_tensor, [np.eye(4)], modes=[0, 1])

    def test_full_contraction_gives_scalar_entry(self, small_tensor, rng):
        vectors = [rng.standard_normal(s) for s in small_tensor.shape]
        contracted = multi_mode_product(
            small_tensor, [v[None, :] for v in vectors]
        )
        assert contracted.shape == (1, 1, 1)
        expected = np.einsum("abc,a,b,c->", small_tensor, *vectors)
        np.testing.assert_allclose(contracted.ravel()[0], expected)


class TestOuterProduct:
    def test_matches_einsum(self, rng):
        vectors = [rng.standard_normal(s) for s in (3, 4, 5)]
        np.testing.assert_allclose(
            outer_product(vectors), np.einsum("a,b,c->abc", *vectors)
        )

    def test_two_vectors_is_outer(self, rng):
        a, b = rng.standard_normal(3), rng.standard_normal(4)
        np.testing.assert_allclose(outer_product([a, b]), np.outer(a, b))

    def test_single_vector(self):
        np.testing.assert_allclose(
            outer_product([np.array([1.0, 2.0])]), [1.0, 2.0]
        )

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            outer_product([])

    def test_non_1d_raises(self):
        with pytest.raises(ShapeError):
            outer_product([np.ones((2, 2))])


class TestNorms:
    def test_frobenius_matches_ravel(self, small_tensor):
        assert frobenius_norm(small_tensor) == pytest.approx(
            np.linalg.norm(small_tensor.ravel())
        )

    def test_inner_product_self_is_norm_squared(self, small_tensor):
        assert inner_product(small_tensor, small_tensor) == pytest.approx(
            frobenius_norm(small_tensor) ** 2
        )

    def test_inner_product_bilinear(self, small_tensor, rng):
        other = rng.standard_normal(small_tensor.shape)
        assert inner_product(2.0 * small_tensor, other) == pytest.approx(
            2.0 * inner_product(small_tensor, other)
        )

    def test_inner_product_shape_mismatch(self, small_tensor):
        with pytest.raises(ShapeError):
            inner_product(small_tensor, np.ones((4, 5, 7)))

    def test_norm_invariant_under_unfolding(self, small_tensor):
        for mode in range(3):
            assert np.linalg.norm(unfold(small_tensor, mode)) == (
                pytest.approx(frobenius_norm(small_tensor))
            )
