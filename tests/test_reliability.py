"""Fault-tolerance suite: retry policies, fault injection, checkpointed
accumulation, shard quarantine, executor demotion, and serve backpressure.

Everything here is deterministic and sleep-free: timing goes through
:class:`~repro.serve.batcher.ManualClock`, failures are scripted by
:class:`~repro.reliability.FaultPlan` at exact call counts, and the
crash-simulation tests assert bit-level equivalence between a resumed
and an uninterrupted accumulation pass.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import warnings

import numpy as np
import pytest

from repro.artifacts import (
    load_moments,
    reduce_shards,
    save_moments,
)
from repro.artifacts.distributed import accumulate_views
from repro.core import TCCA
from repro.datasets import make_multiview_latent
from repro.exceptions import (
    InjectedFault,
    NumericalWarning,
    PersistenceError,
    ReliabilityWarning,
    RetryExhaustedError,
    ServerOverloaded,
    ValidationError,
    WorkerKilled,
)
from repro.linalg import whitening
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.reliability import (
    FaultPlan,
    RetryPolicy,
    accumulate_views_checkpointed,
    checkpoint_path_for,
    discard_checkpoint,
    fault_point,
    install_from_env,
    load_checkpoint,
    save_checkpoint,
    uninstall_plan,
)
from repro.serve import ManualClock, MicroBatcher, ModelManager


DIMS = (7, 5, 4)
N = 120

# recorded at import so forked pool workers inherit the parent's value
# while the parent (and any thread demotion target) sees its own pid
_PARENT_PID = os.getpid()


def _double(item):
    return item * 2


def _die_in_child(item):
    if os.getpid() != _PARENT_PID:
        os._exit(13)
    return item * 2


def make_views(n=N, dims=DIMS, seed=0):
    data = make_multiview_latent(n_samples=n, dims=dims, random_state=seed)
    return [np.asarray(view) for view in data.views]


def state_arrays(moments) -> dict:
    _meta, arrays = moments.state_dict()
    return arrays


def assert_states_close(a, b, atol=1e-10):
    """Bit-level comparison — valid only for passes with identical chunk
    geometry (the accumulators' shifted statistics depend on it)."""
    sa, sb = state_arrays(a), state_arrays(b)
    assert sorted(sa) == sorted(sb)
    for key in sa:
        np.testing.assert_allclose(sa[key], sb[key], atol=atol, rtol=0)


def fitted_correlations(moments):
    """Chunk-geometry-invariant fingerprint of an accumulated state."""
    return TCCA(n_components=2).fit_moments(moments).correlations_


# -- RetryPolicy -------------------------------------------------------------


class TestRetryPolicy:
    def test_delay_schedule_is_deterministic(self):
        a = RetryPolicy(5, base_delay=0.1, multiplier=2.0, seed=7)
        b = RetryPolicy(5, base_delay=0.1, multiplier=2.0, seed=7)
        delays = [a.delay(k) for k in range(1, 5)]
        assert delays == [b.delay(k) for k in range(1, 5)]
        # raw exponential growth, stretched by at most the jitter fraction
        for k, delay in enumerate(delays, start=1):
            raw = 0.1 * 2.0 ** (k - 1)
            assert raw <= delay < raw * (1.0 + a.jitter)

    def test_different_seeds_desynchronize(self):
        a = RetryPolicy(3, seed=1)
        b = RetryPolicy(3, seed=2)
        assert a.delay(1) != b.delay(1)

    def test_delay_caps_at_max_delay(self):
        policy = RetryPolicy(
            8, base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0
        )
        assert policy.delay(6) == 2.0

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(OSError("disk"))
        assert policy.is_retryable(TimeoutError())
        assert not policy.is_retryable(ValidationError("bad input"))
        assert not policy.is_retryable(ValueError("nope"))

    def test_run_recovers_from_transient_failures(self):
        clock = ManualClock()
        policy = RetryPolicy(3, clock=clock)
        attempts = []

        def flaky():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        retries = []
        result = policy.run(
            flaky, on_retry=lambda k, err: retries.append((k, str(err)))
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert [k for k, _ in retries] == [1, 2]
        # waits went through the manual clock, never time.sleep
        expected = policy.delay(1) + policy.delay(2)
        assert clock.monotonic() == pytest.approx(expected)

    def test_run_propagates_non_retryable_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise ValidationError("bad input stays bad")

        with pytest.raises(ValidationError):
            RetryPolicy(5, clock=ManualClock()).run(bad)
        assert len(calls) == 1

    def test_exhaustion_wraps_and_chains(self):
        def always():
            raise OSError("still down")

        policy = RetryPolicy(3, clock=ManualClock())
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.run(always)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OSError)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": 2, "base_delay": -1.0},
            {"max_attempts": 2, "multiplier": 0.5},
            {"max_attempts": 2, "jitter": -0.1},
            {"max_attempts": 2, "retryable": ("OSError",)},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)


# -- FaultPlan ---------------------------------------------------------------


class TestFaultPlan:
    def test_inactive_fault_point_is_passthrough(self):
        payload = {"x": np.arange(3.0)}
        assert fault_point("nowhere", payload) is payload

    def test_fail_at_exact_call(self):
        plan = FaultPlan().fail_at("site", nth=2)
        with plan:
            fault_point("site")
            with pytest.raises(InjectedFault):
                fault_point("site")
            fault_point("site")  # only the 2nd call fails
        assert plan.calls("site") == 3
        assert plan.fired == [("site", 2, "fail")]

    def test_fail_with_custom_error_and_repeat(self):
        plan = FaultPlan().fail_at(
            "site", nth=2, error=OSError("disk full"), repeat=True
        )
        with plan:
            fault_point("site")
            for _ in range(3):
                with pytest.raises(OSError):
                    fault_point("site")

    def test_kill_raises_worker_killed(self):
        with FaultPlan().kill_at("site", nth=1):
            with pytest.raises(WorkerKilled):
                fault_point("site")

    def test_corrupt_mutates_payload(self):
        entries = {"a": np.zeros(3), "b": np.ones(2)}
        with FaultPlan().corrupt_at("site", nth=1):
            corrupted = fault_point("site", entries)
        assert not np.array_equal(corrupted["a"], entries["a"])
        # original payload untouched; later calls pass through
        assert np.array_equal(entries["a"], np.zeros(3))

    def test_slow_calls_injected_sleep(self):
        naps = []
        plan = FaultPlan(sleep=naps.append).slow_at(
            "site", nth=1, seconds=1.5
        )
        with plan:
            fault_point("site")
        assert naps == [1.5]

    def test_context_manager_uninstalls(self):
        plan = FaultPlan().fail_at("site", nth=1)
        with plan:
            pass
        fault_point("site")  # no active plan left -> no fault

    def test_innermost_plan_wins(self):
        outer = FaultPlan().fail_at("site", nth=1)
        inner = FaultPlan()
        with outer, inner:
            fault_point("site")  # inner plan has no rule for the site
        assert outer.fired == []
        assert inner.calls("site") == 1

    def test_from_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "accumulate.chunk:kill@3,artifact.payload:corrupt@1"
        )
        with plan:
            fault_point("accumulate.chunk")
            fault_point("accumulate.chunk")
            with pytest.raises(WorkerKilled):
                fault_point("accumulate.chunk")

    @pytest.mark.parametrize(
        "spec", ["nosite", "site:explode@1", "site:fail@0", "site:fail@x"]
    )
    def test_from_spec_rejects_bad_entries(self, spec):
        with pytest.raises(ValidationError):
            FaultPlan.from_spec(spec)

    def test_install_from_env(self):
        assert install_from_env({}) is None
        plan = install_from_env({"REPRO_FAULTS": "site:fail@1"})
        try:
            with pytest.raises(InjectedFault):
                fault_point("site")
        finally:
            uninstall_plan(plan)


# -- checkpointed accumulation -----------------------------------------------


class TestCheckpointing:
    def test_save_load_round_trip(self, tmp_path):
        views = make_views()
        moments, params = accumulate_views(views, estimator="tcca")
        path = checkpoint_path_for(tmp_path / "part0.moments")
        save_checkpoint(
            moments,
            path,
            estimator="tcca",
            params={
                k: v
                for k, v in params.items()
                if k not in ("n_jobs", "executor")
            },
            rows_done=N,
            total_rows=N,
            chunk_rows=32,
        )
        header, restored = load_checkpoint(path)
        assert header["kind"] == "checkpoint"
        assert header["checkpoint"] == {
            "rows_done": N,
            "total_rows": N,
            "chunk_rows": 32,
        }
        assert_states_close(moments, restored)
        assert discard_checkpoint(path)
        assert not discard_checkpoint(path)

    def test_load_refuses_plain_shard(self, tmp_path):
        views = make_views()
        moments, params = accumulate_views(views, estimator="tcca")
        path = tmp_path / "part0.moments"
        save_moments(moments, path, estimator="tcca", params=params)
        with pytest.raises(PersistenceError, match="not a\n?.*checkpoint"):
            load_checkpoint(path)

    def test_fresh_pass_matches_unchunked(self, tmp_path):
        views = make_views()
        reference, _ = accumulate_views(views, estimator="tcca")
        path = checkpoint_path_for(tmp_path / "part0.moments")
        moments, _params, progress = accumulate_views_checkpointed(
            views, checkpoint_path=path, checkpoint_every=32
        )
        assert progress["resumed_at"] == 0
        assert progress["total_rows"] == N
        assert progress["checkpoints"] == (N - 1) // 32
        assert moments.n_samples == reference.n_samples
        np.testing.assert_allclose(
            fitted_correlations(reference),
            fitted_correlations(moments),
            atol=1e-10,
        )

    def test_crash_and_resume_is_bit_exact(self, tmp_path):
        """Satellite (d): kill at an exact chunk, resume, get the same fit."""
        views = make_views()
        uninterrupted, _params, _ = accumulate_views_checkpointed(
            views,
            checkpoint_path=checkpoint_path_for(tmp_path / "ref.moments"),
            checkpoint_every=32,
        )
        path = checkpoint_path_for(tmp_path / "part0.moments")
        with FaultPlan().kill_at("accumulate.chunk", nth=3):
            with pytest.raises(WorkerKilled):
                accumulate_views_checkpointed(
                    views, checkpoint_path=path, checkpoint_every=32
                )
        assert os.path.exists(path)
        header, partial = load_checkpoint(path)
        assert partial.n_samples == 64  # two completed 32-row chunks
        resumed, _params, progress = accumulate_views_checkpointed(
            views, checkpoint_path=path, checkpoint_every=32, resume=True
        )
        assert progress["resumed_at"] == 64
        # identical chunk geometry -> identical statistics, to the bit
        assert_states_close(uninterrupted, resumed, atol=0)
        # the fitted models agree too, not just the raw statistics
        direct = TCCA(n_components=2).fit(views)
        resumed_fit = TCCA(n_components=2).fit_moments(resumed)
        np.testing.assert_allclose(
            direct.correlations_, resumed_fit.correlations_, atol=1e-10
        )

    def test_resume_reuses_recorded_chunk_geometry(self, tmp_path):
        views = make_views()
        path = checkpoint_path_for(tmp_path / "part0.moments")
        with FaultPlan().kill_at("accumulate.chunk", nth=2):
            with pytest.raises(WorkerKilled):
                accumulate_views_checkpointed(
                    views, checkpoint_path=path, checkpoint_every=50
                )
        # a different checkpoint_every on resume is overridden by the
        # cursor's recorded geometry, keeping the pass bit-identical
        resumed, _params, progress = accumulate_views_checkpointed(
            views, checkpoint_path=path, checkpoint_every=999, resume=True
        )
        assert progress["checkpoint_every"] == 50
        reference, _params, _ = accumulate_views_checkpointed(
            views,
            checkpoint_path=checkpoint_path_for(tmp_path / "ref.moments"),
            checkpoint_every=50,
        )
        assert_states_close(reference, resumed, atol=0)

    def test_resume_refuses_config_mismatch(self, tmp_path):
        views = make_views()
        path = checkpoint_path_for(tmp_path / "part0.moments")
        with FaultPlan().kill_at("accumulate.chunk", nth=2):
            with pytest.raises(WorkerKilled):
                accumulate_views_checkpointed(
                    views,
                    params={"epsilon": 1e-3},
                    checkpoint_path=path,
                    checkpoint_every=32,
                )
        with pytest.raises(ValidationError, match="params"):
            accumulate_views_checkpointed(
                views,
                params={"epsilon": 1e-1},
                checkpoint_path=path,
                checkpoint_every=32,
                resume=True,
            )

    def test_checkpoint_write_retries_transient_failures(self, tmp_path):
        views = make_views()
        path = checkpoint_path_for(tmp_path / "part0.moments")
        plan = FaultPlan().fail_at(
            "artifact.write", nth=1, error=OSError("transient")
        )
        with plan:
            accumulate_views_checkpointed(
                views,
                checkpoint_path=path,
                checkpoint_every=32,
                retry=RetryPolicy(3, clock=ManualClock()),
            )
        assert ("artifact.write", 1, "fail") in plan.fired
        load_checkpoint(path)  # the retried write succeeded and is valid

    def test_reduce_refuses_checkpoint_files(self, tmp_path):
        views = make_views()
        shard_path = tmp_path / "part0.moments"
        moments, params = accumulate_views(views, estimator="tcca")
        save_moments(moments, shard_path, estimator="tcca", params=params)
        ckpt = checkpoint_path_for(shard_path)
        save_checkpoint(
            moments,
            ckpt,
            estimator="tcca",
            params=params,
            rows_done=N,
            total_rows=N,
            chunk_rows=32,
        )
        with pytest.raises(ValidationError, match="in-progress checkpoint"):
            reduce_shards([shard_path, ckpt])


# -- shard quarantine --------------------------------------------------------


def write_shard(tmp_path, name, views, shard=None, params=None):
    moments, resolved = accumulate_views(
        views, estimator="tcca", params=params, shard=shard
    )
    path = tmp_path / name
    save_moments(
        moments,
        path,
        estimator="tcca",
        params=resolved,
        shard=(
            None if shard is None else {"index": shard[0], "count": shard[1]}
        ),
    )
    return path


def damage(path):
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.seek(size - 9)
        fh.write(b"\x00\x00\x00")


class TestQuarantine:
    def test_fail_mode_names_every_corrupt_file(self, tmp_path):
        views = make_views()
        paths = [
            write_shard(tmp_path, f"part{i}.moments", views, shard=(i, 3))
            for i in range(3)
        ]
        damage(paths[0])
        damage(paths[2])
        with pytest.raises(PersistenceError) as excinfo:
            reduce_shards(paths)
        message = str(excinfo.value)
        assert "2 of 3" in message
        assert "part0.moments" in message
        assert "part2.moments" in message

    def test_skip_mode_quarantines_and_reduces_remainder(self, tmp_path):
        views = make_views()
        paths = [
            write_shard(tmp_path, f"part{i}.moments", views, shard=(i, 3))
            for i in range(3)
        ]
        damage(paths[1])
        with pytest.warns(ReliabilityWarning, match="part1.moments"):
            model, report = reduce_shards(paths, on_corrupt="skip")
        assert report["n_shards"] == 2
        assert [q["name"] for q in report["quarantined"]] == [
            "part1.moments"
        ]
        # degraded model == reduce of only the healthy shards
        healthy, _ = reduce_shards([paths[0], paths[2]])
        np.testing.assert_allclose(
            model.correlations_, healthy.correlations_, atol=1e-12
        )

    def test_skip_mode_with_nothing_left_fails(self, tmp_path):
        views = make_views()
        path = write_shard(tmp_path, "part0.moments", views)
        damage(path)
        with pytest.warns(ReliabilityWarning):
            with pytest.raises(PersistenceError, match="nothing left"):
                reduce_shards([path], on_corrupt="skip")

    def test_rejects_unknown_on_corrupt(self, tmp_path):
        with pytest.raises(ValidationError, match="on_corrupt"):
            reduce_shards([tmp_path / "x.moments"], on_corrupt="ignore")

    def test_all_incompatible_shards_reported_in_one_error(self, tmp_path):
        """Satellite (b): every mismatch in a single exhaustive error."""
        views = make_views()
        good = write_shard(tmp_path, "part0.moments", views)
        other_params = write_shard(
            tmp_path, "part1.moments", views, params={"epsilon": 0.5}
        )
        other_dims = write_shard(
            tmp_path, "part2.moments", make_views(dims=(6, 5, 4))
        )
        with pytest.raises(ValidationError) as excinfo:
            reduce_shards([good, other_params, other_dims])
        message = str(excinfo.value)
        assert "2 file(s) disagree" in message
        assert "part1.moments" in message and "params" in message
        assert "part2.moments" in message and "dims" in message


# -- executor retry & demotion -----------------------------------------------


class TestExecutorReliability:
    def test_per_task_retry_recovers(self):
        policy = SerialExecutor().with_retry(
            RetryPolicy(3, clock=ManualClock())
        )
        plan = FaultPlan().fail_at(
            "executor.task", nth=2, error=OSError("flaky worker")
        )
        with plan:
            results = policy.map(_double, [1, 2, 3])
        assert results == [2, 4, 6]
        # item 2's first attempt failed and was retried in place
        assert plan.fired == [("executor.task", 2, "fail")]
        assert plan.calls("executor.task") == 4

    def test_per_task_retry_exhaustion_propagates(self):
        policy = SerialExecutor().with_retry(
            RetryPolicy(2, clock=ManualClock())
        )
        plan = FaultPlan().fail_at(
            "executor.task", nth=1, error=OSError("dead"), repeat=True
        )
        with plan:
            with pytest.raises(RetryExhaustedError):
                policy.map(_double, [1])

    def test_map_fault_site_counts_calls(self):
        plan = FaultPlan()
        with plan:
            SerialExecutor().map(_double, [1])
            SerialExecutor().map(_double, [2])
        assert plan.calls("executor.map") == 2

    def test_thread_pool_demotes_to_serial_on_break(self, monkeypatch):
        from concurrent.futures import BrokenExecutor

        policy = ThreadExecutor(2)

        class BrokenPool:
            def map(self, fn, items):
                raise BrokenExecutor("pool is broken")

            def shutdown(self, wait=True):
                pass

        monkeypatch.setattr(policy, "_get_pool", lambda: BrokenPool())
        with pytest.warns(ReliabilityWarning, match="demoting"):
            results = policy.map(_double, [1, 2, 3])
        assert results == [2, 4, 6]
        assert isinstance(policy._fallback, SerialExecutor)
        # demotion is sticky: later maps go straight to the fallback
        assert policy.map(_double, [4]) == [8]

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-death simulation relies on fork inheritance",
    )
    def test_process_pool_demotes_to_threads_on_worker_death(self):
        policy = ProcessExecutor(2)
        try:
            # forked workers os._exit mid-task, breaking the pool; the
            # thread fallback runs in the parent process and survives
            with pytest.warns(ReliabilityWarning, match="demoting"):
                results = policy.map(_die_in_child, [1, 2, 3, 4])
            assert results == [2, 4, 6, 8]
            assert isinstance(policy._fallback, ThreadExecutor)
        finally:
            policy.shutdown()


# -- whitening conditioning guard --------------------------------------------


class TestWhiteningFloor:
    def setup_method(self):
        whitening._reset_conditioning_warning()

    def teardown_method(self):
        whitening._reset_conditioning_warning()

    def test_ill_conditioned_warns_once_per_process(self):
        # rank-deficient covariance with a tiny epsilon: the floor bites
        covariance = np.diag([1.0, 1e-40, 0.0])
        with pytest.warns(NumericalWarning, match="once per process"):
            result = whitening.regularized_inverse_sqrt(covariance, 1e-30)
        assert np.all(np.isfinite(result))
        with warnings.catch_warnings():
            warnings.simplefilter("error", NumericalWarning)
            whitening.regularized_inverse_sqrt(covariance, 1e-30)
        whitening._reset_conditioning_warning()
        with pytest.warns(NumericalWarning):
            whitening.regularized_inverse_sqrt(covariance, 1e-30)

    def test_well_conditioned_stays_silent(self):
        covariance = np.diag([2.0, 1.0, 0.5])
        with warnings.catch_warnings():
            warnings.simplefilter("error", NumericalWarning)
            result = whitening.regularized_inverse_sqrt(covariance, 1e-6)
        np.testing.assert_allclose(
            result @ result,
            np.linalg.inv(covariance + 1e-6 * np.eye(3)),
            atol=1e-12,
        )

    def test_floor_bounds_amplification(self):
        covariance = np.diag([1.0, 0.0, 0.0])
        with pytest.warns(NumericalWarning):
            result = whitening.regularized_inverse_sqrt(covariance, 1e-300)
        eigenvalues = np.linalg.eigvalsh(result)
        floor = 3 * np.finfo(np.float64).eps  # scale=1, dim=3
        assert eigenvalues.max() <= 1.0 / np.sqrt(floor) * (1 + 1e-12)


# -- nan_policy plumbing -----------------------------------------------------


class TestNanPolicy:
    def test_raise_names_view_and_chunk(self):
        views = make_views(n=40)
        views[1][2, 17] = np.nan
        model = TCCA(n_components=2)
        with pytest.raises(ValidationError, match=r"views\[1\].*chunk 0"):
            model.partial_fit(views)

    def test_skip_drops_aligned_samples_and_counts(self):
        views = make_views(n=60)
        views[0][0, 5] = np.inf
        views[2][1, 41] = np.nan
        clean = [np.delete(view, [5, 41], axis=1) for view in views]
        model = TCCA(n_components=2, nan_policy="skip")
        model.partial_fit(views)
        assert model.n_skipped_ == 2
        reference = TCCA(n_components=2).fit(clean)
        np.testing.assert_allclose(
            model.correlations_, reference.correlations_, atol=1e-10
        )

    def test_skip_count_survives_merge_and_state_dict(self):
        views = make_views(n=80)
        views[0][0, 10] = np.nan
        views[1][0, 70] = np.inf
        left = [view[:, :40] for view in views]
        right = [view[:, 40:] for view in views]
        a, _ = accumulate_views(
            left, estimator="tcca", params={"nan_policy": "skip"}
        )
        b, _ = accumulate_views(
            right, estimator="tcca", params={"nan_policy": "skip"}
        )
        assert (a.n_skipped, b.n_skipped) == (1, 1)
        a.merge(b)
        assert a.n_skipped == 2
        assert a.n_samples == 78
        restored = type(a).from_state_dict(*a.state_dict())
        assert restored.n_skipped == 2

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValidationError, match="nan_policy"):
            TCCA(nan_policy="ignore")

    def test_one_shot_fit_still_strict(self):
        views = make_views(n=40)
        views[0][0, 0] = np.nan
        with pytest.raises(ValidationError):
            TCCA(n_components=2).fit(views)


# -- serve backpressure & reload breaker -------------------------------------


def fitted_model_file(tmp_path):
    from repro.api import save_model

    views = make_views(n=100, dims=(6, 5))
    model = TCCA(n_components=2).fit(views)
    path = tmp_path / "model.npz"
    save_model(model, path)
    return os.fspath(path), views


class TestServeBackpressure:
    def test_admission_bound_rejects_with_retry_after(self):
        clock = ManualClock()
        ran = []

        def runner(snapshot, stacked):
            ran.append(stacked[0].shape[1])
            return [np.zeros((1, stacked[0].shape[1]))]

        batcher = MicroBatcher(
            runner,
            lambda: object(),
            max_batch=64,
            window_seconds=0.01,
            max_inflight_rows=10,
            clock=clock,
        )

        async def run():
            views = [np.zeros((3, 6))]
            first = asyncio.ensure_future(batcher.submit(views))
            await asyncio.sleep(0)
            # 6 rows queued; 6 more would exceed the 10-row bound
            with pytest.raises(ServerOverloaded) as excinfo:
                await batcher.submit(views)
            assert excinfo.value.retry_after >= 0.001
            assert batcher.stats["rejected"] == 1
            assert batcher.load["queued_rows"] == 6
            # a small request still fits under the bound
            second = asyncio.ensure_future(
                batcher.submit([np.zeros((3, 4))])
            )
            await asyncio.sleep(0)
            assert batcher.load["at_capacity"]
            clock.advance(0.01)  # window fires -> batch runs
            await first
            await second
            # capacity freed once the batch settled
            assert batcher.load["queued_rows"] == 0
            assert batcher.load["inflight_rows"] == 0
            assert not batcher.load["at_capacity"]
            # a previously-rejected request is admitted again
            third = asyncio.ensure_future(batcher.submit(views))
            await asyncio.sleep(0)
            clock.advance(0.01)
            await third

        asyncio.run(run())
        assert sum(ran) == 16

    def test_server_maps_overload_to_429(self, tmp_path):
        from repro.serve import Request, ServeApp

        path, views = fitted_model_file(tmp_path)
        clock = ManualClock()
        app = ServeApp(
            ModelManager(path),
            max_inflight_rows=4,
            window_seconds=0.01,
            clock=clock,
        )

        def transform_request(n_rows):
            payload = {
                "views": [view[:, :n_rows].T.tolist() for view in views]
            }
            return Request(
                method="POST",
                path="/transform",
                body=json.dumps(payload).encode(),
            )

        async def run():
            parked = asyncio.ensure_future(
                app.handle(transform_request(3))
            )
            await asyncio.sleep(0)
            rejected = await app.handle(transform_request(3))
            assert rejected.status == 429
            assert rejected.headers.get("Retry-After") == "1"
            error = json.loads(rejected.body)["error"]
            assert error["type"] == "overloaded"
            assert error["status"] == 429
            health = app.health()
            assert health["status"] == "ok"  # 3 of 4 rows: not at capacity
            clock.advance(0.01)
            accepted = await parked
            assert accepted.status == 200

        asyncio.run(run())


class TestReloadBreaker:
    def test_breaker_opens_and_half_open_probe_recovers(self, tmp_path):
        path, _views = fitted_model_file(tmp_path)
        clock = ManualClock()
        manager = ModelManager(
            path, failure_threshold=2, cooldown_seconds=5.0, clock=clock
        )
        good = manager.current()
        with open(path, "rb") as fh:
            original = fh.read()
        with open(path, "wb") as fh:
            fh.write(b"not a model")
        for _ in range(2):
            assert manager.maybe_reload() is good  # stale beats down
        assert manager.breaker["state"] == "open"
        assert manager.breaker["retry_in_seconds"] == pytest.approx(5.0)
        # while open, the file is not even probed
        probes = FaultPlan()
        with probes:
            manager.maybe_reload()
        assert probes.calls("serve.reload") == 0
        # cooldown over: the half-open probe sees the repaired file
        with open(path, "wb") as fh:
            fh.write(original)
        clock.advance(5.0)
        snapshot = manager.maybe_reload()
        assert snapshot.version > good.version
        assert manager.breaker["state"] == "closed"
        assert manager.breaker["consecutive_failures"] == 0

    def test_failed_half_open_probe_reopens(self, tmp_path):
        path, _views = fitted_model_file(tmp_path)
        clock = ManualClock()
        manager = ModelManager(
            path, failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        with open(path, "wb") as fh:
            fh.write(b"junk")
        manager.maybe_reload()
        assert manager.breaker["state"] == "open"
        clock.advance(5.0)
        manager.maybe_reload()  # probe fails -> fresh cooldown
        assert manager.breaker["state"] == "open"
        assert manager.breaker["retry_in_seconds"] == pytest.approx(5.0)

    def test_reload_fault_site_counts(self, tmp_path):
        path, _views = fitted_model_file(tmp_path)
        manager = ModelManager(path)
        os.utime(path, ns=(1, 1))  # change the stat signature
        plan = FaultPlan().fail_at(
            "serve.reload", nth=1, error=OSError("injected")
        )
        with plan:
            manager.maybe_reload()
        assert plan.calls("serve.reload") == 1
        assert manager.reload_errors == 1
