"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_multiview_latent


@pytest.fixture
def rng():
    """A deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_tensor(rng):
    """A random order-3 tensor with distinct mode sizes."""
    return rng.standard_normal((4, 5, 6))


@pytest.fixture
def order4_tensor(rng):
    """A random order-4 tensor."""
    return rng.standard_normal((3, 4, 2, 5))


@pytest.fixture
def three_views(rng):
    """Three centered random views sharing 40 samples."""
    views = [rng.standard_normal((d, 40)) for d in (6, 5, 4)]
    return [view - view.mean(axis=1, keepdims=True) for view in views]


@pytest.fixture
def latent_data():
    """A small latent-factor multi-view classification dataset."""
    return make_multiview_latent(
        n_samples=200, dims=(12, 10, 8), random_state=7
    )
