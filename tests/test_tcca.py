"""Unit tests for TCCA — including numerical checks of the paper's theorems."""

import numpy as np
import pytest

from repro.core.tcca import TCCA, multiview_canonical_correlation
from repro.exceptions import NotFittedError, ValidationError
from repro.linalg.covariance import covariance_tensor, view_covariance
from repro.linalg.whitening import regularized_inverse_sqrt
from repro.tensor.dense import mode_product


def _shared_signal_views(rng, n=300, dims=(6, 5, 4), noise=0.2):
    t = rng.exponential(1.0, n) - 1.0  # skewed shared factor
    views = []
    for d in dims:
        direction = rng.standard_normal(d)
        direction /= np.linalg.norm(direction)
        views.append(
            np.outer(direction, t) + noise * rng.standard_normal((d, n))
        )
    return [v - v.mean(axis=1, keepdims=True) for v in views]


class TestTheorem1:
    """corr(z_1,…,z_m) = C ×_1 h_1^T ×_2 … ×_m h_m^T (Theorem 1)."""

    def test_identity_random_vectors(self, three_views, rng):
        tensor = covariance_tensor(three_views)
        vectors = [rng.standard_normal(v.shape[0]) for v in three_views]
        tensor_side = tensor
        for mode, h in enumerate(vectors):
            tensor_side = mode_product(tensor_side, h[None, :], mode)
        tensor_side = float(tensor_side.ravel()[0])
        data_side = multiview_canonical_correlation(three_views, vectors)
        assert data_side == pytest.approx(tensor_side, abs=1e-10)

    def test_identity_four_views(self, rng):
        views = [rng.standard_normal((d, 30)) for d in (3, 4, 2, 5)]
        views = [v - v.mean(axis=1, keepdims=True) for v in views]
        tensor = covariance_tensor(views)
        vectors = [rng.standard_normal(v.shape[0]) for v in views]
        tensor_side = tensor
        for mode, h in enumerate(vectors):
            tensor_side = mode_product(tensor_side, h[None, :], mode)
        assert multiview_canonical_correlation(views, vectors) == (
            pytest.approx(float(tensor_side.ravel()[0]), abs=1e-10)
        )

    def test_vector_length_validation(self, three_views):
        with pytest.raises(ValidationError):
            multiview_canonical_correlation(
                three_views, [np.ones(3)] * 3
            )

    def test_wrong_vector_count(self, three_views):
        with pytest.raises(ValidationError):
            multiview_canonical_correlation(
                three_views, [np.ones(three_views[0].shape[0])]
            )


class TestTheorem2:
    """The whitened problem attains the same ρ (Theorem 2)."""

    def test_whitened_contraction_matches_raw(self, three_views, rng):
        epsilon = 1e-2
        whiteners = [
            regularized_inverse_sqrt(view_covariance(v), epsilon)
            for v in three_views
        ]
        m_tensor = covariance_tensor(
            [w @ v for w, v in zip(whiteners, three_views)]
        )
        c_tensor = covariance_tensor(three_views)
        us = [rng.standard_normal(v.shape[0]) for v in three_views]
        hs = [w @ u for w, u in zip(whiteners, us)]

        lhs = m_tensor
        for mode, u in enumerate(us):
            lhs = mode_product(lhs, u[None, :], mode)
        rhs = c_tensor
        for mode, h in enumerate(hs):
            rhs = mode_product(rhs, h[None, :], mode)
        assert float(lhs.ravel()[0]) == pytest.approx(
            float(rhs.ravel()[0]), abs=1e-10
        )


class TestTCCAFit:
    def test_recovers_shared_direction(self, rng):
        views = _shared_signal_views(rng)
        model = TCCA(n_components=1, epsilon=1e-2, random_state=0).fit(views)
        zs = model.transform(views)
        # All three canonical variables must be mutually correlated.
        for p in range(3):
            for q in range(p + 1, 3):
                corr = abs(np.corrcoef(zs[p][:, 0], zs[q][:, 0])[0, 1])
                assert corr > 0.8

    def test_hopm_weight_matches_empirical_correlation(self, rng):
        views = _shared_signal_views(rng)
        model = TCCA(
            n_components=1, epsilon=1e-2, decomposition="hopm",
            random_state=0,
        ).fit(views)
        empirical = model.canonical_correlations(views)
        assert empirical[0] == pytest.approx(
            model.correlations_[0], abs=1e-8
        )

    def test_hopm_rho_is_multilinear_optimum(self, rng):
        # No random unit contraction should beat the HOPM ρ.
        views = _shared_signal_views(rng, n=150)
        model = TCCA(
            n_components=1, epsilon=1e-2, decomposition="hopm",
            random_state=0,
        ).fit(views)
        whiteners = [
            regularized_inverse_sqrt(
                view_covariance(v - v.mean(axis=1, keepdims=True)), 1e-2
            )
            for v in views
        ]
        m_tensor = covariance_tensor(
            [
                w @ (v - v.mean(axis=1, keepdims=True))
                for w, v in zip(whiteners, views)
            ]
        )
        rho = abs(model.correlations_[0])
        for _ in range(25):
            us = [rng.standard_normal(v.shape[0]) for v in views]
            us = [u / np.linalg.norm(u) for u in us]
            value = m_tensor
            for mode, u in enumerate(us):
                value = mode_product(value, u[None, :], mode)
            assert abs(float(value.ravel()[0])) <= rho + 1e-8

    def test_transform_shapes(self, rng):
        views = _shared_signal_views(rng)
        model = TCCA(n_components=3, random_state=0).fit(views)
        zs = model.transform(views)
        assert [z.shape for z in zs] == [(300, 3)] * 3
        assert model.transform_combined(views).shape == (300, 9)

    def test_out_of_sample_consistency(self, rng):
        views = _shared_signal_views(rng, n=200)
        model = TCCA(n_components=2, random_state=0).fit(views)
        full = model.transform(views)
        part = model.transform([v[:, :40] for v in views])
        np.testing.assert_allclose(part[0], full[0][:40], atol=1e-10)

    def test_constraint_h_capped_variance(self, rng):
        # h_p^T (C_pp + εI) h_p = 1 for every component.
        views = _shared_signal_views(rng)
        epsilon = 1e-1
        model = TCCA(n_components=2, epsilon=epsilon, random_state=0).fit(
            views
        )
        for view, vectors in zip(views, model.canonical_vectors_):
            centered = view - view.mean(axis=1, keepdims=True)
            gram = view_covariance(centered) + epsilon * np.eye(
                view.shape[0]
            )
            for k in range(2):
                h = vectors[:, k]
                assert h @ gram @ h == pytest.approx(1.0, abs=1e-6)

    def test_covariance_tensor_shape_attribute(self, rng):
        views = _shared_signal_views(rng)
        model = TCCA(n_components=1, random_state=0).fit(views)
        assert model.covariance_tensor_shape_ == (6, 5, 4)

    def test_two_views_supported(self, rng):
        views = _shared_signal_views(rng)[:2]
        model = TCCA(n_components=2, random_state=0).fit(views)
        assert model.transform_combined(views).shape == (300, 4)

    def test_power_decomposition_runs(self, rng):
        views = _shared_signal_views(rng)
        model = TCCA(
            n_components=2, decomposition="power", random_state=0
        ).fit(views)
        assert model.transform_combined(views).shape == (300, 6)

    def test_hopm_multi_component_rejected(self):
        with pytest.raises(ValidationError):
            TCCA(n_components=2, decomposition="hopm")

    def test_unknown_decomposition_rejected(self):
        with pytest.raises(ValidationError):
            TCCA(decomposition="magic")

    def test_components_capped_by_dimension(self, rng):
        views = _shared_signal_views(rng)
        with pytest.raises(ValidationError):
            TCCA(n_components=5, random_state=0).fit(views)  # min dim is 4

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            TCCA(epsilon=-0.5)

    def test_not_fitted_transform(self, rng):
        with pytest.raises(NotFittedError):
            TCCA().transform([rng.standard_normal((3, 5))] * 2)

    def test_deterministic_given_seed(self, rng):
        views = _shared_signal_views(rng)
        z1 = TCCA(n_components=2, random_state=5).fit_transform_combined(
            views
        )
        z2 = TCCA(n_components=2, random_state=5).fit_transform_combined(
            views
        )
        np.testing.assert_allclose(z1, z2)

    def test_view_count_preserved(self, rng):
        views = _shared_signal_views(rng)
        model = TCCA(n_components=1, random_state=0).fit(views)
        assert model.n_views_ == 3
        with pytest.raises(ValidationError):
            model.transform(views[:2])
