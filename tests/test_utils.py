"""Unit tests for repro.utils: rng plumbing, validation, preprocessing."""

import numpy as np
import pytest

from repro.exceptions import ShapeError, ValidationError
from repro.utils import (
    center_columns,
    center_views,
    check_positive_int,
    check_random_state,
    check_square,
    check_views,
    ensure_2d,
    normalize_columns,
    spawn_rngs,
    unit_scale_views,
)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = check_random_state(7).integers(0, 1000, 5)
        b = check_random_state(7).integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert check_random_state(rng) is rng

    def test_invalid_type(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(0, 3)
        assert len(streams) == 3
        draws = [stream.integers(0, 10**9) for stream in streams]
        assert len(set(draws)) == 3

    def test_spawn_negative_count(self):
        with pytest.raises(ValidationError):
            spawn_rngs(0, -1)

    def test_spawn_reproducible(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(5, 2)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(5, 2)]
        assert a == b


class TestEnsure2D:
    def test_accepts_lists(self):
        out = ensure_2d([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            ensure_2d(np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            ensure_2d(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            ensure_2d(np.array([[np.nan, 1.0]]))

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            ensure_2d(np.array([[np.inf, 1.0]]))


class TestCheckViews:
    def test_valid(self, three_views):
        checked = check_views(three_views)
        assert len(checked) == 3

    def test_none_rejected(self):
        with pytest.raises(ValidationError):
            check_views(None)

    def test_min_views(self, three_views):
        with pytest.raises(ValidationError):
            check_views(three_views[:1], min_views=2)

    def test_sample_mismatch(self, rng):
        views = [rng.standard_normal((3, 10)), rng.standard_normal((3, 12))]
        with pytest.raises(ValidationError):
            check_views(views)

    def test_sample_mismatch_allowed_when_disabled(self, rng):
        views = [rng.standard_normal((3, 10)), rng.standard_normal((3, 12))]
        assert len(check_views(views, same_samples=False)) == 2


class TestCheckSquare:
    def test_square_ok(self):
        assert check_square(np.eye(3)).shape == (3, 3)

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            check_square(np.ones((2, 3)))


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3) == 3

    def test_numpy_integer(self):
        assert check_positive_int(np.int64(4)) == 4

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(0)

    def test_bool_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(True)

    def test_float_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0)

    def test_custom_minimum(self):
        assert check_positive_int(0, minimum=0) == 0


class TestPreprocessing:
    def test_center_columns_zero_mean(self, rng):
        matrix = rng.standard_normal((4, 30)) + 3.0
        centered = center_columns(matrix)
        np.testing.assert_allclose(
            centered.mean(axis=1), np.zeros(4), atol=1e-12
        )

    def test_center_columns_returns_mean(self, rng):
        matrix = rng.standard_normal((4, 30))
        centered, mean = center_columns(matrix, return_mean=True)
        np.testing.assert_allclose(centered + mean, matrix)

    def test_center_views(self, three_views):
        shifted = [view + 5.0 for view in three_views]
        for view in center_views(shifted):
            np.testing.assert_allclose(
                view.mean(axis=1), np.zeros(view.shape[0]), atol=1e-12
            )

    def test_normalize_columns_unit_norm(self, rng):
        matrix = rng.standard_normal((5, 20))
        normalized = normalize_columns(matrix)
        np.testing.assert_allclose(
            np.linalg.norm(normalized, axis=0), np.ones(20), atol=1e-12
        )

    def test_normalize_zero_column_untouched(self):
        matrix = np.zeros((3, 2))
        matrix[:, 1] = [3.0, 4.0, 0.0]
        normalized = normalize_columns(matrix)
        np.testing.assert_allclose(normalized[:, 0], np.zeros(3))
        assert np.linalg.norm(normalized[:, 1]) == pytest.approx(1.0)

    def test_unit_scale_views(self, three_views):
        for view in unit_scale_views(three_views):
            norms = np.linalg.norm(view, axis=0)
            np.testing.assert_allclose(
                norms, np.ones(view.shape[1]), atol=1e-12
            )


class TestExceptionsHierarchy:
    def test_all_catchable_as_repro_error(self):
        from repro import exceptions

        for name in (
            "ValidationError",
            "ShapeError",
            "NotFittedError",
            "DecompositionError",
            "DatasetError",
            "ExperimentError",
        ):
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError)

    def test_validation_is_value_error(self):
        from repro.exceptions import ValidationError

        assert issubclass(ValidationError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        from repro.exceptions import NotFittedError

        assert issubclass(NotFittedError, RuntimeError)
