"""Unit tests for kernel CCA."""

import numpy as np
import pytest

from repro.cca.kcca import KCCA, pls_cholesky
from repro.exceptions import NotFittedError, ValidationError
from repro.kernels.functions import ExponentialKernel, LinearKernel


def _correlated_pair(rng, n=80, d=4, noise=0.1):
    t = rng.standard_normal(n)
    x1 = np.outer(rng.standard_normal(d), t) + noise * rng.standard_normal(
        (d, n)
    )
    x2 = np.outer(rng.standard_normal(d + 1), t) + noise * (
        rng.standard_normal((d + 1, n))
    )
    return x1, x2, t


class TestPLSCholesky:
    def test_factorizes_target(self, rng):
        a = rng.standard_normal((10, 10))
        kernel = a @ a.T
        factor = pls_cholesky(kernel, 1e-2)
        target = kernel @ kernel + 1e-2 * kernel
        np.testing.assert_allclose(
            factor.T @ factor, target, atol=1e-4, rtol=1e-5
        )

    def test_rank_deficient_kernel_ok(self, rng):
        a = rng.standard_normal((10, 3))
        kernel = a @ a.T  # rank 3 of size 10
        factor = pls_cholesky(kernel, 1e-3)
        assert np.all(np.isfinite(factor))
        # factor must be invertible thanks to the jitter
        assert np.linalg.matrix_rank(factor) == 10


class TestKCCA:
    def test_linear_kernel_recovers_signal(self, rng):
        x1, x2, t = _correlated_pair(rng)
        model = KCCA(
            n_components=1,
            epsilon=1e-1,
            kernels=[LinearKernel(), LinearKernel()],
        ).fit([x1, x2])
        z1, z2 = model.transform_train()
        assert abs(np.corrcoef(z1[:, 0], t)[0, 1]) > 0.95
        assert abs(np.corrcoef(z1[:, 0], z2[:, 0])[0, 1]) > 0.95

    def test_precomputed_matches_callable(self, rng):
        x1, x2, _ = _correlated_pair(rng)
        kernels = [x1.T @ x1, x2.T @ x2]
        precomputed = KCCA(n_components=2, epsilon=1e-1).fit(kernels)
        callable_mode = KCCA(
            n_components=2,
            epsilon=1e-1,
            kernels=[LinearKernel(), LinearKernel()],
        ).fit([x1, x2])
        np.testing.assert_allclose(
            precomputed.correlations_,
            callable_mode.correlations_,
            rtol=1e-6,
        )

    def test_correlations_descending(self, rng):
        x1, x2, _ = _correlated_pair(rng)
        model = KCCA(
            n_components=4,
            kernels=[ExponentialKernel(), ExponentialKernel()],
        ).fit([x1, x2])
        assert np.all(np.diff(model.correlations_) <= 1e-12)

    def test_out_of_sample_transform_shape(self, rng):
        x1, x2, _ = _correlated_pair(rng, n=60)
        model = KCCA(
            n_components=2,
            kernels=[ExponentialKernel(), ExponentialKernel()],
        ).fit([x1, x2])
        new = model.transform([x1[:, :10], x2[:, :10]])
        assert new[0].shape == (10, 2)
        assert new[1].shape == (10, 2)

    def test_train_transform_consistent_with_blocks(self, rng):
        # Projecting the training points as "new" data must reproduce the
        # training projections.
        x1, x2, _ = _correlated_pair(rng, n=50)
        model = KCCA(
            n_components=2,
            kernels=[LinearKernel(), LinearKernel()],
        ).fit([x1, x2])
        train = model.transform_train()
        as_new = model.transform([x1, x2])
        np.testing.assert_allclose(train[0], as_new[0], atol=1e-8)
        np.testing.assert_allclose(train[1], as_new[1], atol=1e-8)

    def test_three_kernels_rejected(self):
        with pytest.raises(ValidationError):
            KCCA(kernels=[LinearKernel()] * 3)

    def test_three_views_rejected(self, rng):
        kernels = [np.eye(5)] * 3
        with pytest.raises(ValidationError):
            KCCA().fit(kernels)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            KCCA().transform_train()

    def test_wrong_block_rows_raise(self, rng):
        x1, x2, _ = _correlated_pair(rng, n=30)
        model = KCCA(n_components=1).fit([x1.T @ x1, x2.T @ x2])
        with pytest.raises(ValidationError):
            model.transform([np.ones((7, 4)), np.ones((30, 4))])

    def test_pls_constraint_satisfied(self, rng):
        x1, x2, _ = _correlated_pair(rng)
        k1, k2 = x1.T @ x1, x2.T @ x2
        model = KCCA(n_components=2, epsilon=1e-1, center=False).fit(
            [k1, k2]
        )
        for kernel, duals in zip((k1, k2), model.dual_vectors_):
            target = kernel @ kernel + 1e-1 * kernel
            for k in range(2):
                a = duals[:, k]
                assert a @ target @ a == pytest.approx(1.0, abs=1e-4)
