"""Streaming subsystem: accumulator/batch equivalence and stream protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tcca import (
    TCCA,
    whitened_covariance_tensor,
    whitened_covariance_tensor_streaming,
)
from repro.datasets import (
    make_ads_like,
    make_multiview_latent,
    make_nuswide_like,
    make_secstr_like,
    stream_ads_like,
    stream_multiview_latent,
    stream_nuswide_like,
    stream_secstr_like,
)
from repro.exceptions import ValidationError
from repro.linalg.covariance import (
    covariance_tensor,
    cross_covariance,
    view_covariance,
)
from repro.streaming import (
    ArrayViewStream,
    GeneratorViewStream,
    StreamingCovariance,
    StreamingCovarianceTensor,
    as_view_stream,
)


def _ragged_chunks(rng, n_samples):
    """A random partition of ``range(n_samples)`` into contiguous chunks."""
    boundaries = np.sort(
        rng.choice(np.arange(1, n_samples), size=rng.integers(1, 8), replace=False)
    )
    edges = [0, *boundaries.tolist(), n_samples]
    return list(zip(edges[:-1], edges[1:]))


# ---------------------------------------------------------------------------
# StreamingCovariance
# ---------------------------------------------------------------------------


class TestStreamingCovariance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_batch_over_ragged_chunks(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((7, 101)) + rng.standard_normal((7, 1))
        accumulator = StreamingCovariance()
        for start, stop in _ragged_chunks(rng, 101):
            accumulator.update(data[:, start:stop])
        assert accumulator.n_samples == 101
        centered = data - data.mean(axis=1, keepdims=True)
        np.testing.assert_allclose(
            accumulator.mean, data.mean(axis=1), atol=1e-12
        )
        np.testing.assert_allclose(
            accumulator.covariance(), centered @ centered.T / 101, atol=1e-12
        )
        np.testing.assert_allclose(
            accumulator.covariance(center=False), data @ data.T / 101,
            atol=1e-12,
        )

    def test_large_offset_stability(self):
        """The shifted statistics survive means ≫ standard deviations."""
        rng = np.random.default_rng(3)
        data = rng.standard_normal((4, 256)) + 1e7
        accumulator = StreamingCovariance()
        for start in range(0, 256, 32):
            accumulator.update(data[:, start:start + 32])
        reference = np.cov(data, bias=True)
        np.testing.assert_allclose(
            accumulator.covariance(), reference, atol=1e-8
        )

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((5, 90)) + 3.0
        shards = [
            StreamingCovariance().update(data[:, start:stop])
            for start, stop in [(0, 20), (20, 55), (55, 90)]
        ]
        merged = StreamingCovariance()
        for shard in shards:
            merged.merge(shard)
        single = StreamingCovariance().update(data)
        assert merged.n_samples == 90
        np.testing.assert_allclose(merged.mean, single.mean, atol=1e-12)
        np.testing.assert_allclose(
            merged.covariance(), single.covariance(), atol=1e-12
        )

    def test_rejects_mismatched_dimension_and_empty_finalize(self):
        accumulator = StreamingCovariance()
        accumulator.update(np.zeros((3, 4)))
        with pytest.raises(ValidationError):
            accumulator.update(np.zeros((2, 4)))
        with pytest.raises(ValidationError):
            StreamingCovariance().mean

    def test_merge_into_empty_checks_declared_dimension(self):
        declared = StreamingCovariance(dim=5)
        other = StreamingCovariance().update(np.ones((3, 4)))
        with pytest.raises(ValidationError):
            declared.merge(other)

    def test_mean_only_mode_tracks_means_but_not_covariance(self):
        rng = np.random.default_rng(6)
        data = rng.standard_normal((4, 30))
        accumulator = StreamingCovariance(second_moment=False)
        accumulator.update(data[:, :10]).update(data[:, 10:])
        np.testing.assert_allclose(
            accumulator.mean, data.mean(axis=1), atol=1e-12
        )
        with pytest.raises(ValidationError):
            accumulator.covariance()


# ---------------------------------------------------------------------------
# StreamingCovarianceTensor
# ---------------------------------------------------------------------------


class TestStreamingCovarianceTensor:
    @pytest.mark.parametrize("dims", [(6, 5), (6, 5, 4), (3, 4, 2, 3)])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_batch_tensor_over_shuffled_chunk_sizes(self, dims, seed):
        """The acceptance property: any chunking reproduces the batch tensor."""
        rng = np.random.default_rng(seed)
        n_samples = 97
        views = [
            rng.standard_normal((dim, n_samples)) + rng.normal()
            for dim in dims
        ]
        centered = [view - view.mean(axis=1, keepdims=True) for view in views]
        reference = covariance_tensor(centered)
        accumulator = StreamingCovarianceTensor()
        for start, stop in _ragged_chunks(rng, n_samples):
            accumulator.update([view[:, start:stop] for view in views])
        assert accumulator.n_samples == n_samples
        np.testing.assert_allclose(
            accumulator.tensor(), reference, atol=1e-12
        )
        for index, view in enumerate(centered):
            np.testing.assert_allclose(
                accumulator.view_covariance(index),
                view @ view.T / n_samples,
                atol=1e-12,
            )

    def test_raw_mode_matches_uncentered_moment(self):
        rng = np.random.default_rng(5)
        views = [rng.standard_normal((d, 40)) for d in (4, 3, 5)]
        accumulator = StreamingCovarianceTensor(center=False)
        accumulator.update([view[:, :25] for view in views])
        accumulator.update([view[:, 25:] for view in views])
        reference = np.einsum("in,jn,kn->ijk", *views) / 40
        np.testing.assert_allclose(
            accumulator.tensor(), reference, atol=1e-12
        )

    def test_chunk_validation(self):
        accumulator = StreamingCovarianceTensor(dims=(3, 2))
        with pytest.raises(ValidationError):
            accumulator.update([np.zeros((3, 4))])
        with pytest.raises(ValidationError):
            accumulator.update([np.zeros((3, 4)), np.zeros((2, 5))])
        with pytest.raises(ValidationError):
            accumulator.update([np.zeros((4, 4)), np.zeros((2, 4))])
        with pytest.raises(ValidationError):
            accumulator.tensor()

    def test_batch_covariance_functions_delegate(self, three_views):
        """Batch linalg results are reproduced through the accumulators."""
        reference = np.einsum(
            "in,jn,kn->ijk", *three_views
        ) / three_views[0].shape[1]
        np.testing.assert_allclose(
            covariance_tensor(three_views), reference, atol=1e-12
        )
        view = three_views[0]
        np.testing.assert_allclose(
            view_covariance(view),
            view @ view.T / view.shape[1],
            atol=1e-12,
        )
        np.testing.assert_allclose(
            cross_covariance(three_views[0], three_views[1]),
            three_views[0] @ three_views[1].T / view.shape[1],
            atol=1e-12,
        )


# ---------------------------------------------------------------------------
# ViewStream protocol
# ---------------------------------------------------------------------------


class TestViewStreams:
    def test_array_stream_chunks_and_reiterates(self, three_views):
        stream = ArrayViewStream(three_views, chunk_size=16)
        assert stream.dims == (6, 5, 4)
        assert stream.n_views == 3
        assert stream.n_samples == 40
        sizes = [chunk[0].shape[1] for chunk in stream.chunks()]
        assert sizes == [16, 16, 8]
        first = np.hstack([chunk[0] for chunk in stream.chunks()])
        np.testing.assert_array_equal(first, three_views[0])

    def test_as_view_stream_accepts_dataset_views_and_stream(self):
        data = make_multiview_latent(60, dims=(6, 5), random_state=0)
        for source in (data, data.views, data.stream(chunk_size=10)):
            stream = as_view_stream(source, 10)
            assert stream.n_samples == 60
            assert stream.dims == (6, 5)

    def test_as_view_stream_never_mutates_the_source_stream(self):
        data = make_multiview_latent(60, dims=(6, 5), random_state=0)
        source = data.stream(chunk_size=10)
        rechunked = as_view_stream(source, 25)
        assert source.chunk_size == 10
        assert rechunked.chunk_size == 25
        assert rechunked is not source
        assert as_view_stream(source) is source
        assert as_view_stream(source, 10) is source

    def test_generator_streams_refuse_rechunking(self):
        """Chunk geometry is part of a generated stream's data identity."""
        stream = stream_multiview_latent(
            64, dims=(5, 4), chunk_size=16, random_state=7
        )
        with pytest.raises(ValidationError):
            as_view_stream(stream, 32)
        assert as_view_stream(stream, 16) is stream

    def test_generator_stream_validates_factory_output(self):
        stream = GeneratorViewStream(
            lambda index, start, stop: (np.zeros((3, stop - start)),),
            10,
            (3, 2),
            chunk_size=4,
        )
        with pytest.raises(ValidationError):
            list(stream.chunks())

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: stream_multiview_latent(
                90, dims=(8, 7, 6), chunk_size=32, random_state=0
            ),
            lambda: stream_secstr_like(90, chunk_size=32, random_state=1),
            lambda: stream_ads_like(
                90, dims=(20, 15, 12), chunk_size=32, random_state=2
            ),
            lambda: stream_nuswide_like(
                90, dims=(25, 12, 10), chunk_size=32, random_state=3
            ),
        ],
        ids=["latent", "secstr", "ads", "nuswide"],
    )
    def test_dataset_streams_are_reiterable_and_consistent(self, factory):
        stream = factory()
        passes = [list(stream.chunks()), list(stream.chunks())]
        assert sum(c[0].shape[1] for c in passes[0]) == 90
        for chunk_a, chunk_b in zip(*passes):
            for view_a, view_b in zip(chunk_a, chunk_b):
                np.testing.assert_array_equal(view_a, view_b)
        for chunk in passes[0]:
            assert tuple(view.shape[0] for view in chunk) == stream.dims

    def test_chunk_rng_disjoint_from_seed_sequence_spawn(self):
        from repro.utils.rng import chunk_rng

        root = np.random.SeedSequence(42)
        spawned = np.random.default_rng(root.spawn(1)[0])
        derived = chunk_rng(np.random.SeedSequence(42), 0)
        assert not np.array_equal(
            spawned.random(8), derived.random(8)
        )

    def test_dataset_stream_seeds_are_independent_per_chunk(self):
        full = stream_multiview_latent(
            64, dims=(5, 4), chunk_size=16, random_state=7
        )
        # Re-chunking the same seed changes sample grouping but each chunk
        # remains internally deterministic.
        again = stream_multiview_latent(
            64, dims=(5, 4), chunk_size=16, random_state=7
        )
        for chunk_a, chunk_b in zip(full.chunks(), again.chunks()):
            np.testing.assert_array_equal(chunk_a[0], chunk_b[0])

    @pytest.mark.parametrize(
        "make, stream, kwargs",
        [
            (
                make_multiview_latent,
                stream_multiview_latent,
                {"dims": (8, 7, 6)},
            ),
            (make_secstr_like, stream_secstr_like, {}),
            (make_ads_like, stream_ads_like, {"dims": (20, 15, 12)}),
            (
                make_nuswide_like,
                stream_nuswide_like,
                {"dims": (25, 12, 10)},
            ),
        ],
        ids=["latent", "secstr", "ads", "nuswide"],
    )
    def test_stream_factories_match_batch_distributions(
        self, make, stream, kwargs
    ):
        """Guard the 'same distribution as the batch factory' contract.

        Batch and stream realizations differ per seed (different draw
        order), so single draws cannot be compared; instead pool per-view
        summary moments over many structure seeds and require the two
        generators to agree within the observed cross-seed noise (z-score
        test). Deterministic (fixed seeds), and fails loudly if one
        generative model drifts — e.g. a changed tilt scale or loading
        normalization applied to only one of the pair.
        """
        n, n_seeds = 200, 24

        def summarize(views):
            # Per-view marginal moments plus the cross-view odd-order
            # joint moment (mean of the product of per-sample view
            # averages) — the statistic the datasets' order-m dependence
            # is built around, so a dropped coupling fails loudly too.
            per_view = [
                (view.mean(), view.var(), np.abs(view).mean())
                for view in views
            ]
            profiles = [
                (view - view.mean(axis=1, keepdims=True)).mean(axis=0)
                for view in views
            ]
            joint = float(np.prod(profiles, axis=0).mean())
            return [*(x for stats in per_view for x in stats), joint]

        summaries = {"batch": [], "stream": []}
        for seed in range(n_seeds):
            batch_views = make(n, random_state=seed, **kwargs).views
            stream_views = [
                np.hstack(blocks)
                for blocks in zip(
                    *stream(
                        n, chunk_size=128, random_state=seed, **kwargs
                    ).chunks()
                )
            ]
            summaries["batch"].append(summarize(batch_views))
            summaries["stream"].append(summarize(stream_views))
        batch_stats = np.array(summaries["batch"])
        stream_stats = np.array(summaries["stream"])
        difference = stream_stats.mean(axis=0) - batch_stats.mean(axis=0)
        standard_error = np.sqrt(
            (batch_stats.var(axis=0) + stream_stats.var(axis=0)) / n_seeds
        )
        z_scores = difference / (standard_error + 1e-12)
        assert np.abs(z_scores).max() < 6.0, (
            f"stream/batch moment mismatch, |z| up to "
            f"{np.abs(z_scores).max():.1f}"
        )


# ---------------------------------------------------------------------------
# Streaming TCCA
# ---------------------------------------------------------------------------


class TestStreamingTCCA:
    @pytest.mark.parametrize("dims", [(12, 10), (12, 10, 8)])
    def test_fit_stream_matches_fit(self, dims):
        """Acceptance: streaming canonical vectors equal batch, atol 1e-10."""
        data = make_multiview_latent(
            n_samples=400, dims=dims, random_state=11
        )
        batch = TCCA(n_components=3, epsilon=1e-2, random_state=0).fit(
            data.views
        )
        streamed = TCCA(
            n_components=3, epsilon=1e-2, random_state=0
        ).fit_stream(data.stream(chunk_size=64))
        for batch_vectors, stream_vectors in zip(
            batch.canonical_vectors_, streamed.canonical_vectors_
        ):
            np.testing.assert_allclose(
                stream_vectors, batch_vectors, atol=1e-10
            )
        np.testing.assert_allclose(
            streamed.correlations_, batch.correlations_, atol=1e-10
        )
        np.testing.assert_allclose(
            streamed.transform_combined(data.views),
            batch.transform_combined(data.views),
            atol=1e-8,
        )

    def test_whitening_state_matches_batch(self):
        data = make_multiview_latent(
            n_samples=300, dims=(9, 8, 7), random_state=13
        )
        batch = whitened_covariance_tensor(data.views, 1e-2)
        streamed = whitened_covariance_tensor_streaming(
            data.stream(chunk_size=47), 1e-2
        )
        np.testing.assert_allclose(
            streamed.tensor, batch.tensor, atol=1e-12
        )
        for mean_stream, mean_batch in zip(streamed.means, batch.means):
            np.testing.assert_allclose(mean_stream, mean_batch, atol=1e-12)
        for whitener_stream, whitener_batch in zip(
            streamed.whiteners, batch.whiteners
        ):
            np.testing.assert_allclose(
                whitener_stream, whitener_batch, atol=1e-12
            )

    def test_fit_stream_from_generated_stream(self):
        stream = stream_multiview_latent(
            200, dims=(10, 9, 8), chunk_size=64, random_state=5
        )
        model = TCCA(n_components=2, epsilon=1e-1, random_state=0).fit_stream(
            stream
        )
        assert model.covariance_tensor_shape_ == (10, 9, 8)
        assert [v.shape for v in model.canonical_vectors_] == [
            (10, 2), (9, 2), (8, 2),
        ]

    def test_fit_stream_rank_validation(self):
        stream = stream_multiview_latent(
            50, dims=(5, 4), chunk_size=16, random_state=0
        )
        with pytest.raises(ValidationError):
            TCCA(n_components=5).fit_stream(stream)

    def test_accumulation_memory_independent_of_n(self):
        """Peak accumulator memory must not scale with the sample count."""
        import tracemalloc

        def peak_bytes(n_samples):
            rng_seed = 17
            stream = stream_multiview_latent(
                n_samples,
                dims=(10, 9, 8),
                chunk_size=50,
                random_state=rng_seed,
            )
            accumulator = StreamingCovarianceTensor()
            tracemalloc.start()
            tracemalloc.reset_peak()
            for chunks in stream.chunks():
                accumulator.update(chunks)
            accumulator.tensor()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        small = peak_bytes(200)
        large = peak_bytes(3200)
        # 16x the data must not even double the accumulation footprint.
        assert large < 2.0 * small


# ---------------------------------------------------------------------------
# Merge semantics: shard-parallel accumulation == single pass
# ---------------------------------------------------------------------------


def _shard_bounds(n_samples, n_shards, rng):
    """Random contiguous shards, deliberately including empty ones."""
    cuts = np.sort(rng.integers(0, n_samples + 1, size=n_shards - 1))
    edges = [0, *cuts.tolist(), n_samples]
    return list(zip(edges[:-1], edges[1:]))


class TestStreamingCovarianceMerge:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    def test_sharded_merge_matches_single_pass(self, seed, n_shards):
        """merge(split over k shards) == one accumulator fed everything.

        Shards get their own shift (each sees its own first chunk), so
        this exercises the closed-form re-shift, including shards that
        happen to be empty or a single sample wide.
        """
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((6, 83)) + 5.0 * rng.standard_normal((6, 1))
        single = StreamingCovariance().update(data)

        merged = StreamingCovariance()
        for start, stop in _shard_bounds(83, n_shards, rng):
            shard = StreamingCovariance()
            if stop > start:
                shard.update(data[:, start:stop])
            merged.merge(shard)
        assert merged.n_samples == 83
        np.testing.assert_allclose(merged.mean, single.mean, atol=1e-12)
        np.testing.assert_allclose(
            merged.covariance(), single.covariance(), atol=1e-12
        )

    def test_single_row_shards(self):
        """Degenerate shards of one sample each still merge exactly."""
        rng = np.random.default_rng(9)
        data = rng.standard_normal((4, 12)) + 3.0
        single = StreamingCovariance().update(data)
        merged = StreamingCovariance()
        for index in range(12):
            merged.merge(
                StreamingCovariance().update(data[:, index : index + 1])
            )
        np.testing.assert_allclose(merged.mean, single.mean, atol=1e-12)
        np.testing.assert_allclose(
            merged.covariance(), single.covariance(), atol=1e-12
        )

    def test_merging_empty_is_identity(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((5, 40))
        merged = StreamingCovariance().update(data)
        before = merged.covariance().copy()
        merged.merge(StreamingCovariance())
        assert merged.n_samples == 40
        np.testing.assert_array_equal(merged.covariance(), before)

    def test_state_dict_round_trip_resumes(self):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((5, 60)) + 2.0
        accumulator = StreamingCovariance().update(data[:, :25])
        resumed = StreamingCovariance.from_state_dict(
            accumulator.state_dict()
        )
        accumulator.update(data[:, 25:])
        resumed.update(data[:, 25:])
        np.testing.assert_array_equal(
            accumulator.covariance(), resumed.covariance()
        )
        np.testing.assert_array_equal(accumulator.mean, resumed.mean)


class TestStreamingCovarianceTensorMerge:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    @pytest.mark.parametrize("dims", [(5, 4), (5, 4, 3)])
    def test_sharded_merge_matches_single_pass(self, seed, n_shards, dims):
        """Tensor, means, and C_pp all agree with a single pass <= 1e-12.

        Each shard's accumulator picks its own stabilizing shift, so the
        merge exercises the full multilinear re-shift expansion across
        every subset moment (pairs, triples, the full tensor).
        """
        rng = np.random.default_rng(seed)
        n_samples = 71
        views = [
            rng.standard_normal((dim, n_samples))
            + 4.0 * rng.standard_normal((dim, 1))
            for dim in dims
        ]
        single = StreamingCovarianceTensor()
        single.update(views)

        merged = StreamingCovarianceTensor()
        for start, stop in _shard_bounds(n_samples, n_shards, rng):
            shard = StreamingCovarianceTensor()
            if stop > start:
                shard.update([view[:, start:stop] for view in views])
            merged.merge(shard)
        assert merged.n_samples == n_samples
        np.testing.assert_allclose(
            merged.tensor(), single.tensor(), atol=1e-12
        )
        for index in range(len(dims)):
            np.testing.assert_allclose(
                merged.view_covariance(index),
                single.view_covariance(index),
                atol=1e-12,
            )
            np.testing.assert_allclose(
                merged.means[index], single.means[index], atol=1e-12
            )

    def test_single_row_shards(self):
        rng = np.random.default_rng(11)
        views = [
            rng.standard_normal((4, 9)) + 2.0,
            rng.standard_normal((3, 9)) - 1.0,
        ]
        single = StreamingCovarianceTensor()
        single.update(views)
        merged = StreamingCovarianceTensor()
        for index in range(9):
            shard = StreamingCovarianceTensor()
            shard.update([view[:, index : index + 1] for view in views])
            merged.merge(shard)
        np.testing.assert_allclose(
            merged.tensor(), single.tensor(), atol=1e-12
        )

    def test_merge_into_empty_adopts_state(self):
        rng = np.random.default_rng(2)
        views = [rng.standard_normal((4, 30)), rng.standard_normal((3, 30))]
        shard = StreamingCovarianceTensor()
        shard.update(views)
        merged = StreamingCovarianceTensor()
        merged.merge(shard)
        np.testing.assert_array_equal(merged.tensor(), shard.tensor())
        # ... and the adopted state is a copy, not a view of the shard's.
        merged.update([view[:, :5] for view in views])
        assert merged.n_samples == 35
        assert shard.n_samples == 30

    def test_raw_mode_merge_requires_matching_shifts(self):
        rng = np.random.default_rng(4)
        views = [rng.standard_normal((4, 20)), rng.standard_normal((3, 20))]
        left = StreamingCovarianceTensor(center=False, shifts=[0.0, 0.0])
        left.update(views)
        right = StreamingCovarianceTensor(center=False, shifts=[1.0, 0.0])
        right.update(views)
        with pytest.raises(ValidationError):
            left.merge(right)
        # identical shifts merge exactly
        same = StreamingCovarianceTensor(center=False, shifts=[0.0, 0.0])
        same.update(views)
        left.merge(same)
        assert left.n_samples == 40

    def test_mismatched_configuration_rejected(self):
        rng = np.random.default_rng(6)
        views = [rng.standard_normal((4, 10)), rng.standard_normal((3, 10))]
        centered = StreamingCovarianceTensor()
        centered.update(views)
        raw = StreamingCovarianceTensor(center=False)
        raw.update(views)
        with pytest.raises(ValidationError):
            centered.merge(raw)
        other_dims = StreamingCovarianceTensor()
        other_dims.update([views[0], views[1][:2]])
        with pytest.raises(ValidationError):
            centered.merge(other_dims)

    def test_state_dict_round_trip_resumes(self):
        rng = np.random.default_rng(8)
        views = [
            rng.standard_normal((4, 50)) + 1.0,
            rng.standard_normal((3, 50)) - 2.0,
            rng.standard_normal((2, 50)),
        ]
        accumulator = StreamingCovarianceTensor()
        accumulator.update([view[:, :20] for view in views])
        resumed = StreamingCovarianceTensor.from_state_dict(
            accumulator.state_dict()
        )
        accumulator.update([view[:, 20:] for view in views])
        resumed.update([view[:, 20:] for view in views])
        np.testing.assert_array_equal(
            accumulator.tensor(), resumed.tensor()
        )
        for index in range(3):
            np.testing.assert_array_equal(
                accumulator.view_covariance(index),
                resumed.view_covariance(index),
            )
