"""Parallel execution layer: executors, sharding, map-reduce equivalence.

The contract under test is the headline guarantee of
:mod:`repro.parallel`: parallelism never changes what is computed.
Sharded accumulation reduced with the exact ``merge()`` matches the
single-pass statistics to ≤1e-12 for any shard count, shard order, or
executor, and end-to-end parallel fits match serial fits to ≤1e-10 in
canonical correlations.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KTCCA, TCCA, MomentState
from repro.core import engine
from repro.exceptions import ValidationError
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    accumulate_parallel,
    check_n_jobs,
    effective_n_jobs,
    parallel_chunk_size,
    resolve_executor,
    shard_stream,
)
from repro.parallel.sharding import _accumulate_shard
from repro.streaming import (
    ArrayViewStream,
    GeneratorViewStream,
    StreamingCovarianceTensor,
    ViewStream,
    iter_validated_chunks,
)
from repro.tensor.operator import CovarianceTensorOperator


def _latent_views(dims, n_samples, seed=0, noise=0.3, offset=0.0):
    """Shared-factor views with separated strengths (well-conditioned)."""
    rng = np.random.default_rng(seed)
    strengths = (2.0 * 0.5 ** np.arange(3))[:, None]
    signal = strengths * rng.standard_normal((3, n_samples))
    return [
        rng.standard_normal((d, 3)) @ signal
        + noise * rng.standard_normal((d, n_samples))
        + offset
        for d in dims
    ]


# -- executors ---------------------------------------------------------------


class TestExecutors:
    def test_check_n_jobs_accepts_none_minus_one_and_positive(self):
        assert check_n_jobs(None) is None
        assert check_n_jobs(-1) == -1
        assert check_n_jobs(np.int64(3)) == 3

    @pytest.mark.parametrize("bad", [0, -2, 2.5, True, "4"])
    def test_check_n_jobs_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            check_n_jobs(bad)

    def test_effective_n_jobs_reads_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_n_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert effective_n_jobs(None) == 3
        assert effective_n_jobs(2) == 2  # explicit beats env

    def test_effective_n_jobs_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "two")
        with pytest.raises(ValidationError):
            effective_n_jobs(None)
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValidationError):
            effective_n_jobs(None)

    def test_effective_n_jobs_all_cores(self):
        import os

        assert effective_n_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_resolve_executor_kinds(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert isinstance(resolve_executor("auto", None), SerialExecutor)
        assert isinstance(resolve_executor("auto", 4), ThreadExecutor)
        assert isinstance(resolve_executor("serial", 4), SerialExecutor)
        assert isinstance(resolve_executor("thread", 2), ThreadExecutor)
        assert isinstance(resolve_executor("process", 2), ProcessExecutor)
        policy = ThreadExecutor(5)
        assert resolve_executor(policy, 2) is policy
        with pytest.raises(ValidationError):
            resolve_executor("fork", 2)

    @pytest.mark.parametrize(
        "policy",
        [SerialExecutor(), ThreadExecutor(3), ProcessExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_map_preserves_input_order(self, policy):
        items = list(range(11))
        assert policy.map(str, items) == [str(item) for item in items]
        assert policy.starmap(divmod, [(7, 3), (9, 2)]) == [(2, 1), (4, 1)]

    def test_for_shared_memory_demotes_process_to_thread(self):
        demoted = ProcessExecutor(4).for_shared_memory()
        assert isinstance(demoted, ThreadExecutor)
        assert demoted.n_workers == 4
        thread = ThreadExecutor(2)
        assert thread.for_shared_memory() is thread

    def test_pool_is_reused_across_map_calls(self):
        policy = ThreadExecutor(2)
        policy.map(str, range(4))
        pool = policy._pool
        assert pool is not None
        policy.map(str, range(4))
        assert policy._pool is pool  # no per-call pool churn
        policy.shutdown()
        assert policy._pool is None
        assert policy.map(str, range(3)) == ["0", "1", "2"]  # recreates
        policy.shutdown()


# -- sharding ----------------------------------------------------------------


class TestSharding:
    def test_shards_partition_the_chunk_sequence(self):
        views = _latent_views((5, 4), 100, seed=1)
        stream = ArrayViewStream(views, chunk_size=17)  # 6 chunks, last=15
        shards = shard_stream(stream, 4)
        assert len(shards) == 4
        assert sum(shard.n_samples for shard in shards) == 100
        replayed = [
            chunk
            for shard in shards
            for chunk in iter_validated_chunks(shard)
        ]
        original = list(iter_validated_chunks(stream))
        assert len(replayed) == len(original)
        for mine, theirs in zip(replayed, original):
            for a, b in zip(mine, theirs):
                np.testing.assert_array_equal(a, b)

    def test_more_shards_than_chunks_yields_empty_tails(self):
        views = _latent_views((4, 3), 30, seed=2)
        stream = ArrayViewStream(views, chunk_size=16)  # 2 chunks
        shards = shard_stream(stream, 5)
        assert [shard.n_samples for shard in shards] == [16, 14, 0, 0, 0]
        assert list(shards[-1].chunks()) == []

    def test_generator_stream_shards(self):
        def factory(index, start, stop):
            rng = np.random.default_rng(index)
            return [rng.standard_normal((d, stop - start)) for d in (4, 3)]

        stream = GeneratorViewStream(factory, 50, (4, 3), chunk_size=12)
        shards = shard_stream(stream, 3)
        assert sum(shard.n_samples for shard in shards) == 50
        replayed = [
            chunk
            for shard in shards
            for chunk in iter_validated_chunks(shard)
        ]
        for mine, theirs in zip(replayed, iter_validated_chunks(stream)):
            for a, b in zip(mine, theirs):
                np.testing.assert_array_equal(a, b)

    def test_generator_shards_do_not_replay_earlier_chunks(self):
        """chunk_at random access: shard k generates only its own block."""
        calls = []

        def factory(index, start, stop):
            calls.append(index)
            rng = np.random.default_rng(index)
            return [rng.standard_normal((d, stop - start)) for d in (4, 3)]

        stream = GeneratorViewStream(factory, 60, (4, 3), chunk_size=10)
        shards = shard_stream(stream, 3)  # 6 chunks -> 2 per shard
        calls.clear()
        list(shards[2].chunks())  # the last shard: chunks 4 and 5
        assert calls == [4, 5]

    def test_shard_stream_requires_chunk_geometry(self):
        class Opaque(ViewStream):
            @property
            def dims(self):
                return (3, 2)

            @property
            def n_samples(self):
                return 10

            def chunks(self):
                yield (np.ones((3, 10)), np.ones((2, 10)))

        with pytest.raises(ValidationError, match="chunk_size"):
            shard_stream(Opaque(), 2)

    def test_empty_shards_carry_no_parent_data(self):
        """An empty shard must not ship the whole dataset to a worker."""
        views = _latent_views((4, 3), 30, seed=2)
        stream = ArrayViewStream(views, chunk_size=16)  # 2 chunks
        shards = shard_stream(stream, 5)
        import pickle

        for shard in shards[2:]:
            assert shard.n_samples == 0
            # a pickled empty shard is tiny — no view arrays inside
            assert len(pickle.dumps(shard)) < 1000

    def test_process_executor_falls_back_for_unpicklable_streams(self):
        """Closure-factory streams run under the thread twin, not a crash.

        Every stream_*_like dataset factory builds its chunk factory as
        a closure, which cannot cross a process boundary; the reduce
        must still work (threads), not die in ProcessPoolExecutor.
        """
        from repro.datasets import stream_multiview_latent

        stream = stream_multiview_latent(
            n_samples=200, dims=(6, 5, 4), chunk_size=32, random_state=0
        )
        serial = TCCA(
            n_components=2, solver="dense", random_state=0,
            executor="serial",
        ).fit_stream(stream)
        model = TCCA(
            n_components=2, solver="dense", random_state=0,
            n_jobs=2, executor="process",
        ).fit_stream(stream)
        np.testing.assert_allclose(
            model.correlations_, serial.correlations_, rtol=0, atol=1e-10
        )

    def test_accumulate_parallel_falls_back_to_serial_on_opaque_stream(self):
        class Opaque(ViewStream):
            @property
            def dims(self):
                return (3, 2)

            @property
            def n_samples(self):
                return 10

            def chunks(self):
                rng = np.random.default_rng(0)
                yield tuple(rng.standard_normal((d, 10)) for d in (3, 2))

        state = accumulate_parallel(
            Opaque(), partial(MomentState, track_tensor=True),
            ThreadExecutor(3),
        )
        assert state.n_samples == 10

    def test_parallel_chunk_size_bounds(self):
        # large N: about chunks_per_worker chunks per worker
        assert parallel_chunk_size(100_000, 4) == 6250
        # moderate N: the efficiency floor does not kick in above 64
        assert parallel_chunk_size(1_000, 2) == 125
        # tiny datasets never exceed their own size
        assert parallel_chunk_size(10, 4) == 10


# -- map-reduce accumulation -------------------------------------------------


@pytest.mark.parametrize(
    "policy",
    [SerialExecutor(), ThreadExecutor(3), ProcessExecutor(2)],
    ids=["serial", "thread", "process"],
)
@pytest.mark.parametrize("n_shards", [2, 3, 7])
def test_accumulate_parallel_matches_single_pass(policy, n_shards):
    views = _latent_views((6, 5, 4), 160, seed=3, offset=1.5)
    stream = ArrayViewStream(views, chunk_size=24)
    factory = partial(MomentState, track_tensor=True)
    serial = _accumulate_shard(factory, None, stream)
    merged = accumulate_parallel(stream, factory, policy, n_shards=n_shards)
    assert merged.n_samples == serial.n_samples == 160
    np.testing.assert_allclose(
        merged.tensor(), serial.tensor(), rtol=1e-12, atol=1e-12
    )
    for mine, theirs in zip(merged.means(), serial.means()):
        np.testing.assert_allclose(mine, theirs, rtol=1e-12, atol=1e-12)
    for mine, theirs in zip(
        merged.view_covariances(), serial.view_covariances()
    ):
        np.testing.assert_allclose(mine, theirs, rtol=1e-12, atol=1e-12)


@given(
    sizes=st.lists(
        st.integers(min_value=0, max_value=9), min_size=2, max_size=5
    ).filter(lambda sizes: sum(sizes) >= 4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_merge_is_permutation_invariant(sizes, seed):
    """Reducing k shards in any order matches the single pass ≤1e-12.

    Shards are uneven and may be empty; each shard picks its own
    stabilizing shift (its first chunk's mean), so the merge exercises
    the closed-form re-shift, not just moment addition.
    """
    n_total = sum(sizes)
    views = _latent_views((5, 4, 3), n_total, seed=seed, offset=0.7)
    boundaries = np.cumsum([0] + list(sizes))
    shard_views = [
        [view[:, lo:hi] for view in views]
        for lo, hi in zip(boundaries[:-1], boundaries[1:])
    ]

    def shard_states():
        states = []
        for chunk in shard_views:
            state = MomentState(track_tensor=True)
            if chunk[0].shape[1]:
                state.update(chunk)
            states.append(state)
        return states

    reference = MomentState(track_tensor=True).update(views)
    order = np.random.default_rng(seed).permutation(len(sizes))
    permuted = shard_states()
    merged = MomentState(track_tensor=True)
    for index in order:
        merged.merge(permuted[index])
    natural = shard_states()
    merged_natural = MomentState(track_tensor=True)
    for state in natural:
        merged_natural.merge(state)

    for candidate in (merged, merged_natural):
        assert candidate.n_samples == n_total
        np.testing.assert_allclose(
            candidate.tensor(), reference.tensor(), rtol=1e-12, atol=1e-12
        )
        for mine, theirs in zip(
            candidate.view_covariances(), reference.view_covariances()
        ):
            np.testing.assert_allclose(mine, theirs, rtol=1e-12, atol=1e-12)


def _fit_from_moments(moments, epsilon=1e-2, rank=2):
    """Whiten → build → decompose → finalize from accumulated moments."""
    whitening = engine.whiten_stage(moments, epsilon)
    built = engine.build_stage(moments, whitening, "dense")
    spec = engine.DecompositionSpec(method="als", rank=rank, random_state=0)
    result = engine.decompose_stage(spec, tensor=built.tensor)
    return engine.finalize_stage(result, built.whiteners)


@pytest.mark.parametrize(
    "policy",
    [ThreadExecutor(3), ProcessExecutor(2)],
    ids=["thread", "process"],
)
def test_sharded_fit_is_shard_order_invariant(policy):
    """Permuted shard reduction → identical moments and factors ≤1e-12.

    The shard states themselves are computed under the executor (thread
    and process), then reduced in different orders; the fitted factors
    of every reduction agree to 1e-12 and match the serial fit.
    """
    views = _latent_views((10, 8, 6), 220, seed=11, offset=0.5)
    stream = ArrayViewStream(views, chunk_size=32)
    shards = shard_stream(stream, 4)  # uneven: 7 chunks over 4 shards
    factory = partial(MomentState, track_tensor=True)

    fits = []
    for order in ([0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]):
        states = policy.map(
            partial(_accumulate_shard, factory, None),
            [shards[index] for index in order],
        )
        merged = states[0]
        for state in states[1:]:
            merged.merge(state)
        assert merged.n_samples == 220
        fits.append(_fit_from_moments(merged))

    reference = _fit_from_moments(factory().update(views))
    for fit in fits:
        np.testing.assert_allclose(
            fit.correlations, fits[0].correlations, rtol=1e-12, atol=1e-12
        )
        for mine, theirs in zip(fit.canonical_vectors, fits[0].canonical_vectors):
            np.testing.assert_allclose(mine, theirs, rtol=0, atol=1e-12)
        np.testing.assert_allclose(
            fit.correlations, reference.correlations, rtol=0, atol=1e-10
        )


# -- end-to-end estimator equivalence ---------------------------------------


@pytest.fixture(scope="module")
def serial_fits():
    """Serial reference fits per (m, solver), shared across executor cases."""
    cache = {}

    def get(m, solver):
        key = (m, solver)
        if key not in cache:
            views = _latent_views((12, 9, 7)[:m], 300, seed=7)
            cache[key] = (
                views,
                TCCA(
                    n_components=2,
                    solver=solver,
                    random_state=0,
                    executor="serial",
                ).fit(views),
            )
        return cache[key]

    return get


@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.parametrize("solver", ["dense", "implicit"])
@pytest.mark.parametrize("m", [2, 3])
def test_parallel_fit_matches_serial(serial_fits, m, solver, executor):
    views, reference = serial_fits(m, solver)
    model = TCCA(
        n_components=2,
        solver=solver,
        random_state=0,
        n_jobs=2,
        executor=executor,
    ).fit(views)
    assert model.solver_used_ == solver
    np.testing.assert_allclose(
        model.correlations_, reference.correlations_, rtol=0, atol=1e-10
    )
    for mine, theirs in zip(
        model.canonical_vectors_, reference.canonical_vectors_
    ):
        np.testing.assert_allclose(mine, theirs, rtol=0, atol=1e-8)


@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.parametrize("solver", ["dense", "implicit"])
def test_parallel_fit_stream_matches_serial(serial_fits, solver, executor):
    views, reference = serial_fits(3, solver)
    # chunk size chosen so the 300 samples split into uneven shards
    model = TCCA(
        n_components=2,
        solver=solver,
        random_state=0,
        n_jobs=3,
        executor=executor,
    ).fit_stream(ArrayViewStream(views, chunk_size=47))
    np.testing.assert_allclose(
        model.correlations_, reference.correlations_, rtol=0, atol=1e-10
    )


def test_parallel_partial_fit_matches_serial(serial_fits):
    """Parallel ingest changes nothing about the incremental session.

    The comparison is serial-partial_fit vs parallel-partial_fit (same
    warm-start trajectory, different ingest parallelism) — the engine's
    partial_fit ≡ cold-fit equivalence itself is tests/test_engine.py's
    contract.
    """
    views, _reference = serial_fits(3, "dense")
    halves = [
        [view[:, :150] for view in views],
        [view[:, 150:] for view in views],
    ]
    serial = TCCA(
        n_components=2, solver="dense", random_state=0, executor="serial"
    )
    parallel = TCCA(
        n_components=2, solver="dense", random_state=0, n_jobs=2
    )
    for half in halves:
        serial.partial_fit(half)
        parallel.partial_fit(half)
    assert parallel.moments_.n_samples == serial.moments_.n_samples == 300
    np.testing.assert_allclose(
        parallel.correlations_, serial.correlations_, rtol=0, atol=1e-10
    )
    for mine, theirs in zip(
        parallel.canonical_vectors_, serial.canonical_vectors_
    ):
        np.testing.assert_allclose(mine, theirs, rtol=0, atol=1e-8)


def test_repro_jobs_env_default_matches_serial(serial_fits, monkeypatch):
    views, reference = serial_fits(3, "dense")
    monkeypatch.setenv("REPRO_JOBS", "2")
    model = TCCA(n_components=2, solver="dense", random_state=0).fit(views)
    np.testing.assert_allclose(
        model.correlations_, reference.correlations_, rtol=0, atol=1e-10
    )


def test_ktcca_parallel_matches_serial(rng):
    base = rng.standard_normal((2, 60))
    kernels = []
    for _ in range(3):
        lifted = rng.standard_normal((5, 2)) @ base
        lifted = lifted + 0.2 * rng.standard_normal(lifted.shape)
        kernels.append(lifted.T @ lifted)
    reference = KTCCA(n_components=2, random_state=0).fit(kernels)
    for executor in ("thread", "process"):
        model = KTCCA(
            n_components=2, random_state=0, n_jobs=2, executor=executor
        ).fit(kernels)
        np.testing.assert_allclose(
            model.correlations_, reference.correlations_, rtol=0, atol=1e-10
        )
        for mine, theirs in zip(model.dual_vectors_, reference.dual_vectors_):
            np.testing.assert_allclose(mine, theirs, rtol=0, atol=1e-8)


# -- threaded contraction kernels -------------------------------------------


def test_operator_kernels_match_serial_blocked():
    views = _latent_views((8, 6, 5), 240, seed=13)
    centered = [view - view.mean(axis=1, keepdims=True) for view in views]
    serial = CovarianceTensorOperator.from_views(centered, block_floats=2**12)
    threaded = CovarianceTensorOperator.from_views(
        centered, block_floats=2**12, policy=ThreadExecutor(3)
    )
    # process demotes to threads for shared-memory kernels
    demoted = CovarianceTensorOperator.from_views(
        centered, block_floats=2**12, policy=ProcessExecutor(3)
    )
    rng = np.random.default_rng(0)
    factors = [rng.standard_normal((d, 2)) for d in (8, 6, 5)]
    vectors = [factor[:, 0] for factor in factors]
    for parallel in (threaded, demoted):
        for mode in range(3):
            np.testing.assert_allclose(
                parallel.mttkrp(factors, mode),
                serial.mttkrp(factors, mode),
                rtol=1e-12,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                parallel.mode_gram(mode),
                serial.mode_gram(mode),
                rtol=1e-12,
                atol=1e-12,
            )
        assert parallel.multi_contract(vectors) == pytest.approx(
            serial.multi_contract(vectors), abs=1e-12
        )
        assert parallel.frobenius_norm_sq() == pytest.approx(
            serial.frobenius_norm_sq(), rel=1e-12
        )


def test_stream_operator_contractions_match_serial():
    views = _latent_views((7, 5, 4), 180, seed=17, offset=0.9)
    stream = ArrayViewStream(views, chunk_size=25)
    moments = MomentState().update(views)
    whitening = engine.whiten_stage(moments, 1e-2)
    build = dict(whiteners=whitening.whiteners, means=whitening.means)
    serial = CovarianceTensorOperator.from_stream(stream, **build)
    threaded = CovarianceTensorOperator.from_stream(
        stream, **build, policy=ThreadExecutor(3)
    )
    rng = np.random.default_rng(1)
    factors = [rng.standard_normal((d, 2)) for d in (7, 5, 4)]
    for mode in range(3):
        np.testing.assert_allclose(
            threaded.mttkrp(factors, mode),
            serial.mttkrp(factors, mode),
            rtol=1e-12,
            atol=1e-12,
        )
    vectors = [factor[:, 1] for factor in factors]
    assert threaded.multi_contract(vectors) == pytest.approx(
        serial.multi_contract(vectors), abs=1e-12
    )


def test_whiten_stage_fanout_is_exact():
    views = _latent_views((6, 5, 4), 90, seed=19)
    moments = MomentState().update(views)
    serial = engine.whiten_stage(moments, 1e-2)
    fanned = engine.whiten_stage(moments, 1e-2, policy=ThreadExecutor(3))
    for mine, theirs in zip(fanned.whiteners, serial.whiteners):
        np.testing.assert_array_equal(mine, theirs)


# -- API-boundary validation -------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -3, 1.5, True])
    def test_tcca_rejects_bad_n_jobs(self, bad):
        with pytest.raises(ValueError):
            TCCA(n_jobs=bad)

    def test_tcca_rejects_bad_executor(self):
        with pytest.raises(ValueError):
            TCCA(executor="cluster")

    def test_ktcca_rejects_bad_parallel_params(self):
        with pytest.raises(ValueError):
            KTCCA(n_jobs=0)
        with pytest.raises(ValueError):
            KTCCA(executor="gpu")

    @pytest.mark.parametrize("bad", [0, -4, 2.5, "many"])
    def test_fit_stream_rejects_bad_chunk_size(self, bad, three_views):
        with pytest.raises(ValueError):
            TCCA(n_components=1).fit_stream(three_views, chunk_size=bad)

    @pytest.mark.parametrize("bad", [0, -1, 0.5])
    def test_transform_rejects_bad_chunk_size(self, bad, three_views):
        model = TCCA(n_components=1, random_state=0).fit(three_views)
        with pytest.raises(ValueError):
            model.transform(three_views, chunk_size=bad)

    def test_pipeline_rejects_bad_parallel_params(self):
        from repro.api import MultiviewPipeline

        with pytest.raises(ValueError):
            MultiviewPipeline("tcca", "rls", n_jobs=0)
        with pytest.raises(ValueError):
            MultiviewPipeline("tcca", "rls", executor="bogus")

    def test_parallel_config_round_trips_and_is_not_fitted_state(
        self, tmp_path, three_views
    ):
        from repro.api import load_model, save_model

        model = TCCA(
            n_components=1, random_state=0, n_jobs=2, executor="thread"
        ).fit(three_views)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        # policy is config: restored via params, not fitted attributes
        assert loaded.n_jobs == 2
        assert loaded.executor == "thread"
        for mine, theirs in zip(
            loaded.canonical_vectors_, model.canonical_vectors_
        ):
            np.testing.assert_array_equal(mine, theirs)
