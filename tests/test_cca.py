"""Unit tests for the classical CCA family: CCA, MaxVar, LSCCA."""

import numpy as np
import pytest

from repro.cca import CCA, LSCCA, MaxVarCCA
from repro.exceptions import NotFittedError, ValidationError


def _correlated_pair(rng, n=300, d1=6, d2=5, noise=0.1):
    """Two views sharing a strong 1-D latent signal."""
    t = rng.standard_normal(n)
    a = rng.standard_normal(d1)
    b = rng.standard_normal(d2)
    x1 = np.outer(a, t) + noise * rng.standard_normal((d1, n))
    x2 = np.outer(b, t) + noise * rng.standard_normal((d2, n))
    return x1, x2, t


class TestCCA:
    def test_recovers_shared_signal(self, rng):
        x1, x2, t = _correlated_pair(rng)
        model = CCA(n_components=1, epsilon=1e-3).fit([x1, x2])
        z1, z2 = model.transform([x1, x2])
        corr = abs(np.corrcoef(z1[:, 0], t)[0, 1])
        assert corr > 0.98
        assert model.correlations_[0] > 0.95

    def test_canonical_variables_maximally_correlated(self, rng):
        x1, x2, _ = _correlated_pair(rng)
        model = CCA(n_components=2, epsilon=1e-3).fit([x1, x2])
        z1, z2 = model.transform([x1, x2])
        first = abs(np.corrcoef(z1[:, 0], z2[:, 0])[0, 1])
        assert first == pytest.approx(model.correlations_[0], abs=0.02)

    def test_correlations_sorted_and_bounded(self, rng):
        x1 = rng.standard_normal((5, 100))
        x2 = rng.standard_normal((4, 100))
        model = CCA(n_components=4, epsilon=1e-2).fit([x1, x2])
        assert np.all(np.diff(model.correlations_) <= 1e-12)
        assert np.all(model.correlations_ >= -1e-12)
        assert np.all(model.correlations_ <= 1.0 + 1e-9)

    def test_constraint_satisfied(self, rng):
        x1, x2, _ = _correlated_pair(rng)
        model = CCA(n_components=2, epsilon=1e-2).fit([x1, x2])
        from repro.linalg.covariance import view_covariance

        for view, vectors in zip(
            (x1, x2), model.canonical_vectors_
        ):
            centered = view - view.mean(axis=1, keepdims=True)
            regularized = view_covariance(centered) + 1e-2 * np.eye(
                view.shape[0]
            )
            for k in range(2):
                h = vectors[:, k]
                assert h @ regularized @ h == pytest.approx(1.0, abs=1e-6)

    def test_three_views_rejected(self, rng):
        views = [rng.standard_normal((3, 20)) for _ in range(3)]
        with pytest.raises(ValidationError):
            CCA(n_components=1).fit(views)

    def test_too_many_components_rejected(self, rng):
        with pytest.raises(ValidationError):
            CCA(n_components=10).fit(
                [rng.standard_normal((3, 20)), rng.standard_normal((5, 20))]
            )

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            CCA().transform([rng.standard_normal((3, 5))] * 2)

    def test_transform_dim_mismatch_raises(self, rng):
        x1, x2, _ = _correlated_pair(rng)
        model = CCA(n_components=1).fit([x1, x2])
        with pytest.raises(ValidationError):
            model.transform([x1[:3], x2])

    def test_combined_shape(self, rng):
        x1, x2, _ = _correlated_pair(rng)
        model = CCA(n_components=3).fit([x1, x2])
        assert model.transform_combined([x1, x2]).shape == (300, 6)

    def test_out_of_sample_projection_consistent(self, rng):
        x1, x2, _ = _correlated_pair(rng, n=200)
        model = CCA(n_components=2).fit([x1, x2])
        full = model.transform([x1, x2])
        part = model.transform([x1[:, :50], x2[:, :50]])
        np.testing.assert_allclose(part[0], full[0][:50], atol=1e-10)

    def test_invalid_epsilon(self):
        with pytest.raises(ValidationError):
            CCA(epsilon=-1.0)


class TestMaxVarCCA:
    def test_recovers_shared_signal_three_views(self, rng):
        t = rng.standard_normal(400)
        views = [
            np.outer(rng.standard_normal(d), t)
            + 0.2 * rng.standard_normal((d, 400))
            for d in (6, 5, 4)
        ]
        model = MaxVarCCA(n_components=1, epsilon=1e-3).fit(views)
        zs = model.transform(views)
        for z in zs:
            assert abs(np.corrcoef(z[:, 0], t)[0, 1]) > 0.95

    def test_consensus_orthonormal(self, rng):
        views = [rng.standard_normal((5, 50)) for _ in range(3)]
        model = MaxVarCCA(n_components=3).fit(views)
        np.testing.assert_allclose(
            model.consensus_.T @ model.consensus_, np.eye(3), atol=1e-10
        )

    def test_scores_descending(self, rng):
        views = [rng.standard_normal((5, 60)) for _ in range(3)]
        model = MaxVarCCA(n_components=4).fit(views)
        assert np.all(np.diff(model.scores_) <= 1e-12)

    def test_two_views_agrees_with_cca_signal(self, rng):
        x1, x2, t = _correlated_pair(rng)
        model = MaxVarCCA(n_components=1, epsilon=1e-3).fit([x1, x2])
        z1, _ = model.transform([x1, x2])
        assert abs(np.corrcoef(z1[:, 0], t)[0, 1]) > 0.97

    def test_unit_variance_constraint(self, rng):
        views = [rng.standard_normal((4, 80)) for _ in range(3)]
        model = MaxVarCCA(n_components=2, epsilon=1e-2).fit(views)
        from repro.linalg.covariance import view_covariance

        for view, vectors in zip(views, model.canonical_vectors_):
            centered = view - view.mean(axis=1, keepdims=True)
            gram = view_covariance(centered) + 1e-2 * np.eye(view.shape[0])
            for k in range(2):
                h = vectors[:, k]
                assert h @ gram @ h == pytest.approx(1.0, abs=1e-8)

    def test_components_exceed_samples_raises(self, rng):
        views = [rng.standard_normal((4, 5)) for _ in range(2)]
        with pytest.raises(ValidationError):
            MaxVarCCA(n_components=10).fit(views)


class TestLSCCA:
    def test_recovers_shared_signal(self, rng):
        t = rng.standard_normal(400)
        views = [
            np.outer(rng.standard_normal(d), t)
            + 0.2 * rng.standard_normal((d, 400))
            for d in (6, 5, 4)
        ]
        model = LSCCA(n_components=1, epsilon=1e-3, random_state=0).fit(views)
        zs = model.transform(views)
        for z in zs:
            assert abs(np.corrcoef(z[:, 0], t)[0, 1]) > 0.95

    def test_consensus_columns_orthogonal(self, rng):
        views = [rng.standard_normal((6, 80)) for _ in range(3)]
        model = LSCCA(n_components=3, random_state=0).fit(views)
        gram = model.consensus_.T @ model.consensus_
        off_diagonal = gram - np.diag(np.diag(gram))
        assert np.abs(off_diagonal).max() < 1e-6

    def test_equivalent_to_maxvar_top_component(self, rng):
        # Vía et al. prove the LS reformulation shares CCA-MAXVAR's optimum:
        # the leading consensus variables must align.
        t = rng.standard_normal(300)
        views = [
            np.outer(rng.standard_normal(d), t)
            + 0.5 * rng.standard_normal((d, 300))
            for d in (5, 4, 6)
        ]
        ls = LSCCA(n_components=1, epsilon=1e-2, random_state=0).fit(views)
        mv = MaxVarCCA(n_components=1, epsilon=1e-2).fit(views)
        alignment = abs(
            np.corrcoef(ls.consensus_[:, 0], mv.consensus_[:, 0])[0, 1]
        )
        assert alignment > 0.99

    def test_scale_constraint(self, rng):
        views = [rng.standard_normal((4, 60)) for _ in range(3)]
        model = LSCCA(n_components=2, epsilon=1e-2, random_state=0).fit(views)
        from repro.linalg.covariance import view_covariance

        for k in range(2):
            total = 0.0
            for view, vectors in zip(views, model.canonical_vectors_):
                centered = view - view.mean(axis=1, keepdims=True)
                gram = view_covariance(centered) + 1e-2 * np.eye(
                    view.shape[0]
                )
                h = vectors[:, k]
                total += h @ gram @ h
            assert total / 3 == pytest.approx(1.0, abs=1e-6)

    def test_deterministic_given_seed(self, rng):
        views = [rng.standard_normal((4, 50)) for _ in range(3)]
        z1 = LSCCA(n_components=2, random_state=3).fit_transform_combined(
            views
        )
        z2 = LSCCA(n_components=2, random_state=3).fit_transform_combined(
            views
        )
        np.testing.assert_allclose(z1, z2)

    def test_transform_before_fit(self, rng):
        with pytest.raises(NotFittedError):
            LSCCA().transform([rng.standard_normal((3, 5))] * 2)
