"""Tests for the group cache, precomputed-whitening path, and input
robustness (failure injection) across the estimators."""

import numpy as np
import pytest

from repro import CCA, LSCCA, TCCA
from repro.core.tcca import whitened_covariance_tensor
from repro.exceptions import ValidationError
from repro.experiments.methods import (
    BestSingleViewMethod,
    TCCAMethod,
)


class TestGroupCache:
    def test_same_views_same_r_cached(self, three_views):
        method = BestSingleViewMethod()
        first = method.groups(three_views, 2)
        second = method.groups(three_views, 2)
        assert first is second

    def test_different_r_not_aliased(self, latent_data):
        method = TCCAMethod(epsilon=1e-1, max_iter=20)
        groups2 = method.groups(latent_data.views, 2)
        groups3 = method.groups(latent_data.views, 3)
        assert groups2 is not groups3
        assert groups2[0][0].array.shape[1] == 6
        assert groups3[0][0].array.shape[1] == 9

    def test_different_views_not_aliased(self, rng):
        method = BestSingleViewMethod()
        views_a = [rng.standard_normal((3, 10)) for _ in range(2)]
        views_b = [rng.standard_normal((3, 10)) for _ in range(2)]
        assert method.groups(views_a, 1) is not method.groups(views_b, 1)


class TestPrecomputedWhitening:
    def test_matches_direct_fit(self, latent_data):
        views = latent_data.views
        state = whitened_covariance_tensor(views, 1e-1)
        direct = TCCA(n_components=3, epsilon=1e-1, random_state=0).fit(
            views
        )
        precomputed = TCCA(
            n_components=3, epsilon=1e-1, random_state=0
        ).fit(views, precomputed=state)
        np.testing.assert_allclose(
            direct.transform_combined(views),
            precomputed.transform_combined(views),
            atol=1e-10,
        )

    def test_epsilon_mismatch_rejected(self, latent_data):
        state = whitened_covariance_tensor(latent_data.views, 1e-1)
        with pytest.raises(ValidationError):
            TCCA(n_components=2, epsilon=1e-2).fit(
                latent_data.views, precomputed=state
            )

    def test_epsilon_round_off_tolerated(self, latent_data):
        # A config-round-tripped ε (e.g. recomputed as 0.1 * 0.1, one ULP
        # off 0.01) must still match the precomputed whitening state.
        state = whitened_covariance_tensor(latent_data.views, 1e-2)
        recomputed = 0.1 * 0.1
        assert recomputed != 1e-2  # the round-off this guards against
        model = TCCA(n_components=2, epsilon=recomputed, random_state=0)
        model.fit(latent_data.views, precomputed=state)
        assert model.n_views_ == 3

    def test_dims_mismatch_rejected(self, latent_data, rng):
        state = whitened_covariance_tensor(latent_data.views, 1e-1)
        other = [rng.standard_normal((4, 200)) for _ in range(3)]
        with pytest.raises(ValidationError):
            TCCA(n_components=2, epsilon=1e-1).fit(
                other, precomputed=state
            )

    def test_state_exposes_dims(self, latent_data):
        state = whitened_covariance_tensor(latent_data.views, 1e-1)
        assert state.dims == [12, 10, 8]
        assert state.tensor.shape == (12, 10, 8)


class TestFailureInjection:
    """NaN / inf inputs must be rejected loudly, never propagated."""

    @pytest.mark.parametrize(
        "estimator",
        [
            CCA(n_components=1),
            LSCCA(n_components=1, random_state=0),
            TCCA(n_components=1, random_state=0),
        ],
        ids=["cca", "lscca", "tcca"],
    )
    def test_nan_views_rejected(self, estimator, rng):
        views = [rng.standard_normal((4, 20)) for _ in range(2)]
        views[0][2, 3] = np.nan
        with pytest.raises(ValidationError):
            estimator.fit(views)

    @pytest.mark.parametrize(
        "estimator",
        [
            CCA(n_components=1),
            TCCA(n_components=1, random_state=0),
        ],
        ids=["cca", "tcca"],
    )
    def test_inf_views_rejected(self, estimator, rng):
        views = [rng.standard_normal((4, 20)) for _ in range(2)]
        views[1][0, 0] = np.inf
        with pytest.raises(ValidationError):
            estimator.fit(views)

    def test_constant_view_raises_decomposition_error(self, rng):
        # A zero-variance view centers to all-zero, so the covariance
        # tensor vanishes and the rank-1 problem is undefined — this must
        # fail loudly, not return garbage directions.
        from repro.exceptions import DecompositionError

        views = [
            np.ones((3, 40)),
            rng.standard_normal((4, 40)),
            rng.standard_normal((5, 40)),
        ]
        with pytest.raises(DecompositionError):
            TCCA(n_components=1, epsilon=1e-1, random_state=0).fit(views)

    def test_single_sample_tcca_rejected_or_finite(self, rng):
        views = [rng.standard_normal((3, 1)) for _ in range(3)]
        # One sample: centered data are identically zero -> the tensor is
        # zero and decomposition must fail loudly.
        from repro.exceptions import DecompositionError

        with pytest.raises((DecompositionError, ValidationError)):
            TCCA(n_components=1, random_state=0).fit(views)

    def test_duplicate_samples_ok(self, rng):
        base = rng.standard_normal((4, 10))
        views = [
            np.hstack([base, base]),
            np.hstack([base * 2.0, base * 2.0]),
        ]
        model = CCA(n_components=2, epsilon=1e-2).fit(views)
        assert np.all(np.isfinite(model.correlations_))
