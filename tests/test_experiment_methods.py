"""Unit tests for the method adapters in repro.experiments.methods."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.methods import (
    AverageKernelMethod,
    _as_grid,
    BestSingleKernelMethod,
    BestSingleViewMethod,
    ConcatenationMethod,
    DSEMethod,
    KernelBank,
    KTCCAMethod,
    LSCCAMethod,
    MaxVarMethod,
    PairwiseCCAMethod,
    PairwiseKCCAMethod,
    SSMVDMethod,
    TCCAMethod,
)
from repro.kernels.functions import ExponentialKernel, LinearKernel


@pytest.fixture
def views(latent_data):
    return latent_data.views


@pytest.fixture
def small_views(rng):
    return [rng.standard_normal((d, 50)) for d in (6, 5, 4)]


class TestBestSingleView:
    def test_one_group_per_view(self, views):
        groups = BestSingleViewMethod().groups(views, 3)
        assert len(groups) == 3
        for p, group in enumerate(groups):
            assert len(group) == 1
            assert group[0].array.shape == (200, views[p].shape[0])


class TestConcatenation:
    def test_single_group_total_dims(self, views):
        groups = ConcatenationMethod().groups(views, 3)
        assert len(groups) == 1
        total = sum(view.shape[0] for view in views)
        assert groups[0][0].array.shape == (200, total)

    def test_samples_unit_normalized_per_view(self, views):
        groups = ConcatenationMethod().groups(views, 3)
        stacked = groups[0][0].array
        first_block = stacked[:, : views[0].shape[0]]
        norms = np.linalg.norm(first_block, axis=1)
        np.testing.assert_allclose(norms, np.ones(200), atol=1e-8)


class TestPairwiseCCA:
    def test_best_mode_group_count(self, views):
        method = PairwiseCCAMethod(mode="best", epsilon=1e-2)
        groups = method.groups(views, 2)
        assert method.name == "CCA (BST)"
        assert len(groups) == 3  # three pairs
        assert all(len(group) == 1 for group in groups)
        assert groups[0][0].array.shape == (200, 4)  # 2r per pair

    def test_average_mode_single_group(self, views):
        method = PairwiseCCAMethod(mode="average", epsilon=1e-2)
        groups = method.groups(views, 2)
        assert method.name == "CCA (AVG)"
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_epsilon_grid_multiplies_groups(self, views):
        method = PairwiseCCAMethod(mode="best", epsilon=(1e-2, 1e-1))
        assert len(method.groups(views, 2)) == 6

    def test_r_capped_at_pair_dims(self, views):
        method = PairwiseCCAMethod(mode="best", epsilon=1e-2)
        groups = method.groups(views, 100)
        # smallest pair dim caps r: views dims are (12, 10, 8)
        assert groups[0][0].array.shape[1] == 2 * 10  # pair (0,1)

    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            PairwiseCCAMethod(mode="sum")

    def test_empty_epsilon_grid(self):
        with pytest.raises(ValidationError):
            PairwiseCCAMethod(epsilon=())


class TestMultisetAdapters:
    def test_lscca_shape(self, views):
        groups = LSCCAMethod(epsilon=1e-2).groups(views, 2)
        assert len(groups) == 1
        assert groups[0][0].array.shape == (200, 6)

    def test_maxvar_shape(self, views):
        groups = MaxVarMethod(epsilon=1e-2).groups(views, 2)
        assert groups[0][0].array.shape == (200, 6)

    def test_tcca_shape_and_eps_groups(self, views):
        method = TCCAMethod(epsilon=(1e-2, 1.0), max_iter=30)
        groups = method.groups(views, 2)
        assert len(groups) == 2
        assert groups[0][0].array.shape == (200, 6)
        assert "eps=0.01" in groups[0][0].tag

    def test_tcca_r_capped_by_min_dim(self, views):
        method = TCCAMethod(epsilon=1e-2, max_iter=20)
        groups = method.groups(views, 50)
        # min view dim is 8 -> r_eff = 8, combined 24
        assert groups[0][0].array.shape[1] == 24

    def test_dse_shape(self, views):
        groups = DSEMethod(pca_components=6).groups(views, 2)
        assert groups[0][0].array.shape == (200, 2)

    def test_ssmvd_shape(self, views):
        groups = SSMVDMethod(pca_components=6, max_iter=5).groups(views, 2)
        assert groups[0][0].array.shape == (200, 2)


class TestKernelBank:
    def test_caches_by_views_identity(self, small_views):
        bank = KernelBank([LinearKernel() for _ in small_views])
        first = bank.raw_kernels(small_views)
        second = bank.raw_kernels(small_views)
        assert first is second

    def test_kernel_count_mismatch(self, small_views):
        bank = KernelBank([LinearKernel()])
        with pytest.raises(ValidationError):
            bank.raw_kernels(small_views)

    def test_centered_kernels_zero_rowsum(self, small_views):
        bank = KernelBank([LinearKernel() for _ in small_views])
        for kernel in bank.centered_kernels(small_views):
            np.testing.assert_allclose(
                kernel.sum(axis=0), np.zeros(50), atol=1e-8
            )

    def test_kernel_distances_metricish(self, small_views):
        bank = KernelBank([ExponentialKernel() for _ in small_views])
        kernel = bank.normalized_kernels(small_views)[0]
        distances = bank.kernel_distances(kernel)
        assert distances.min() >= 0.0
        np.testing.assert_allclose(np.diag(distances), np.zeros(50), atol=1e-8)
        np.testing.assert_allclose(distances, distances.T, atol=1e-12)


class TestKernelMethods:
    def test_bsk_groups(self, small_views):
        bank = KernelBank([ExponentialKernel() for _ in small_views])
        groups = BestSingleKernelMethod(bank).groups(small_views, 5)
        assert len(groups) == 3
        assert all(g[0].kind == "distances" for g in groups)

    def test_avg_single_group(self, small_views):
        bank = KernelBank([ExponentialKernel() for _ in small_views])
        groups = AverageKernelMethod(bank).groups(small_views, 5)
        assert len(groups) == 1
        assert groups[0][0].kind == "distances"

    def test_pairwise_kcca_modes(self, small_views):
        bank = KernelBank([LinearKernel() for _ in small_views])
        best = PairwiseKCCAMethod(bank, mode="best", epsilon=1e-1)
        avg = PairwiseKCCAMethod(bank, mode="average", epsilon=1e-1)
        assert len(best.groups(small_views, 2)) == 3
        assert len(avg.groups(small_views, 2)) == 1
        group = best.groups(small_views, 2)[0]
        assert group[0].array.shape == (50, 4)

    def test_ktcca_shape(self, small_views):
        bank = KernelBank([LinearKernel() for _ in small_views])
        method = KTCCAMethod(bank, epsilon=1e-1, max_iter=30)
        groups = method.groups(small_views, 2)
        assert groups[0][0].array.shape == (50, 6)

    def test_ktcca_r_capped_by_samples(self, small_views):
        bank = KernelBank([LinearKernel() for _ in small_views])
        method = KTCCAMethod(bank, epsilon=1e-1, max_iter=10)
        groups = method.groups(small_views, 500)
        assert groups[0][0].array.shape[1] == 3 * 49


class TestAsGrid:
    def test_scalar_and_grid(self):
        assert _as_grid(0.01) == (0.01,)
        assert _as_grid([1e-3, 1e-2]) == (1e-3, 1e-2)

    def test_zero_dim_array_is_a_single_epsilon(self):
        # np.isscalar(np.array(1.0)) is False; a 0-d epsilon (e.g. read
        # back from an npz config) must not be iterated.
        assert _as_grid(np.array(0.25)) == (0.25,)
        assert _as_grid(np.float64(0.5)) == (0.5,)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            _as_grid(())
