"""Unit tests for RLS, kNN, and the prediction combiners."""

import numpy as np
import pytest

from repro.classifiers import (
    KNNClassifier,
    RLSClassifier,
    average_score_predict,
    majority_vote_predict,
)
from repro.exceptions import NotFittedError, ValidationError


def _blobs(rng, n_per_class=40, d=4, separation=4.0, n_classes=2):
    centers = rng.standard_normal((n_classes, d)) * separation
    features = np.vstack(
        [
            centers[c] + rng.standard_normal((n_per_class, d))
            for c in range(n_classes)
        ]
    )
    labels = np.repeat(np.arange(n_classes), n_per_class)
    order = rng.permutation(labels.shape[0])
    return features[order], labels[order]


class TestRLSClassifier:
    def test_separates_blobs(self, rng):
        features, labels = _blobs(rng)
        model = RLSClassifier().fit(features, labels)
        assert model.score(features, labels) > 0.95

    def test_multiclass(self, rng):
        features, labels = _blobs(rng, n_classes=4)
        model = RLSClassifier().fit(features, labels)
        assert model.score(features, labels) > 0.9
        assert model.decision_function(features).shape == (160, 4)

    def test_binary_decision_is_1d(self, rng):
        features, labels = _blobs(rng)
        model = RLSClassifier().fit(features, labels)
        assert model.decision_function(features).ndim == 1

    def test_bias_term_handles_offset(self, rng):
        # Classes differ only by an offset along a direction; the bias
        # makes the threshold affine.
        features, labels = _blobs(rng)
        shifted = features + 100.0
        model = RLSClassifier().fit(shifted, labels)
        assert model.score(shifted, labels) > 0.95

    def test_no_bias_option(self, rng):
        features, labels = _blobs(rng)
        model = RLSClassifier(add_bias=False).fit(features, labels)
        assert model.coef_.shape[0] == features.shape[1]

    def test_ridge_solution_closed_form(self, rng):
        # Verify against the normal equations on a small problem.
        features = rng.standard_normal((20, 3))
        labels = (rng.random(20) > 0.5).astype(int)
        gamma = 0.5
        model = RLSClassifier(gamma=gamma, add_bias=False).fit(
            features, labels
        )
        targets = np.where(labels == 1, 1.0, -1.0)
        expected = np.linalg.solve(
            features.T @ features / 20 + gamma * np.eye(3),
            features.T @ targets / 20,
        )
        np.testing.assert_allclose(model.coef_[:, 0], expected, atol=1e-10)

    def test_predict_from_scores_binary(self, rng):
        features, labels = _blobs(rng)
        model = RLSClassifier().fit(features, labels)
        scores = model.decision_function(features)
        np.testing.assert_array_equal(
            model.predict_from_scores(scores), model.predict(features)
        )

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValidationError):
            RLSClassifier().fit(rng.standard_normal((5, 2)), np.zeros(5))

    def test_label_shape_mismatch(self, rng):
        with pytest.raises(ValidationError):
            RLSClassifier().fit(rng.standard_normal((5, 2)), np.zeros(4))

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            RLSClassifier().predict(rng.standard_normal((3, 2)))

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValidationError):
            RLSClassifier(gamma=-0.1)

    def test_string_labels(self, rng):
        features, labels = _blobs(rng)
        names = np.array(["cat", "dog"])[labels]
        model = RLSClassifier().fit(features, names)
        predictions = model.predict(features)
        assert set(predictions) <= {"cat", "dog"}


class TestKNNClassifier:
    def test_k1_perfect_on_train(self, rng):
        features, labels = _blobs(rng)
        model = KNNClassifier(1).fit(features, labels)
        assert model.score(features, labels) == 1.0

    def test_separates_blobs(self, rng):
        features, labels = _blobs(rng)
        train, test = features[:60], features[60:]
        model = KNNClassifier(3).fit(train, labels[:60])
        assert model.score(test, labels[60:]) > 0.9

    def test_k_capped_at_train_size(self, rng):
        features, labels = _blobs(rng, n_per_class=2)
        model = KNNClassifier(50).fit(features, labels)
        assert model.k_ == 4

    def test_tie_break_uses_nearest(self):
        train = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        model = KNNClassifier(4).fit(train, labels)
        # All four neighbors vote 2-2; the nearest neighbor is class 0.
        assert model.predict(np.array([[2.0]]))[0] == 0

    def test_multiclass(self, rng):
        features, labels = _blobs(rng, n_classes=5, separation=6.0)
        model = KNNClassifier(3).fit(features, labels)
        assert model.score(features, labels) > 0.95

    def test_dimension_mismatch(self, rng):
        model = KNNClassifier(1).fit(rng.standard_normal((5, 3)), np.arange(5))
        with pytest.raises(ValidationError):
            model.predict(rng.standard_normal((2, 4)))

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            KNNClassifier(1).predict(rng.standard_normal((2, 2)))

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            KNNClassifier(0)


class TestCombiners:
    def test_average_scores_improves_on_noisy_views(self, rng):
        features, labels = _blobs(rng, n_per_class=60)
        # Two noisy copies of the same signal.
        noisy1 = features + 2.0 * rng.standard_normal(features.shape)
        noisy2 = features + 2.0 * rng.standard_normal(features.shape)
        c1 = RLSClassifier().fit(noisy1[:60], labels[:60])
        c2 = RLSClassifier().fit(noisy2[:60], labels[:60])
        combined = average_score_predict(
            [c1, c2], [noisy1[60:], noisy2[60:]]
        )
        acc_combined = np.mean(combined == labels[60:])
        acc_single = np.mean(c1.predict(noisy1[60:]) == labels[60:])
        assert acc_combined >= acc_single - 0.05

    def test_average_requires_same_classes(self, rng):
        features, labels = _blobs(rng)
        c1 = RLSClassifier().fit(features, labels)
        c2 = RLSClassifier().fit(features, np.where(labels == 0, 5, 7))
        with pytest.raises(ValidationError):
            average_score_predict([c1, c2], [features, features])

    def test_majority_vote_two_to_one(self, rng):
        features, labels = _blobs(rng)

        class Constant:
            def __init__(self, value):
                self.value = value
                self.classes_ = np.array([0, 1])

            def predict(self, x):
                return np.full(len(x), self.value)

        votes = majority_vote_predict(
            [Constant(1), Constant(1), Constant(0)], [features] * 3
        )
        assert np.all(votes == 1)

    def test_majority_vote_tie_prefers_first(self, rng):
        features, _ = _blobs(rng)

        class Constant:
            def __init__(self, value):
                self.value = value
                self.classes_ = np.array([0, 1])

            def predict(self, x):
                return np.full(len(x), self.value)

        votes = majority_vote_predict(
            [Constant(0), Constant(1)], [features] * 2
        )
        assert np.all(votes == 0)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValidationError):
            majority_vote_predict([], [])
        with pytest.raises(ValidationError):
            average_score_predict([], [])
