"""Unit tests for repro.evaluation: metrics, resources, protocol, sweep."""

import numpy as np
import pytest

from repro.evaluation import (
    Candidate,
    ClassifierSpec,
    accuracy,
    evaluate_groups,
    mean_std,
    measure_resources,
    run_dimension_sweep,
    SweepConfig,
)
from repro.evaluation.protocol import knn_predict_from_distances
from repro.exceptions import ExperimentError, ValidationError


class TestMetrics:
    def test_accuracy_basic(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([1, 2], [1, 2, 3])

    def test_accuracy_empty(self):
        with pytest.raises(ValidationError):
            accuracy([], [])

    def test_mean_std(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0
        assert std == 1.0

    def test_mean_std_empty(self):
        with pytest.raises(ValidationError):
            mean_std([])


class TestResources:
    def test_measures_time(self):
        def busy():
            total = 0.0
            for i in range(20000):
                total += i * 0.5
            return total

        result, usage = measure_resources(busy)
        assert result > 0
        assert usage.seconds > 0.0

    def test_measures_allocation(self):
        def allocate():
            return np.zeros(int(2e6))

        _result, usage = measure_resources(allocate)
        assert usage.peak_memory_mb > 10.0  # 16 MB array

    def test_passes_arguments(self):
        result, _usage = measure_resources(lambda a, b=1: a + b, 2, b=3)
        assert result == 5

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError):
            measure_resources(lambda: (_ for _ in ()).throw(RuntimeError()))


class TestCandidate:
    def test_feature_candidate(self, rng):
        candidate = Candidate("features", rng.standard_normal((5, 2)))
        assert candidate.array.shape == (5, 2)

    def test_distance_candidate_must_be_square(self, rng):
        with pytest.raises(ValidationError):
            Candidate("distances", rng.standard_normal((5, 3)))

    def test_unknown_kind(self, rng):
        with pytest.raises(ValidationError):
            Candidate("graph", rng.standard_normal((3, 3)))


class TestClassifierSpec:
    def test_defaults(self):
        spec = ClassifierSpec()
        assert spec.kind == "rls"

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            ClassifierSpec(kind="svm")


class TestKnnFromDistances:
    def test_nearest_label_wins_k1(self):
        distances = np.array([[0.1, 5.0, 9.0], [7.0, 0.2, 9.0]])
        labels = np.array([3, 1, 2])
        predictions = knn_predict_from_distances(distances, labels, 1)
        np.testing.assert_array_equal(predictions, [3, 1])

    def test_majority_k3(self):
        distances = np.array([[1.0, 2.0, 3.0, 9.0]])
        labels = np.array([0, 1, 1, 0])
        predictions = knn_predict_from_distances(distances, labels, 3)
        assert predictions[0] == 1

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            knn_predict_from_distances(np.ones((2, 3)), np.ones(4), 1)


def _separable_setup(rng, n=120, d=4):
    labels = np.repeat([0, 1], n // 2)
    informative = (labels * 4.0 + rng.standard_normal(n))[None, :]
    good = np.vstack(
        [informative, rng.standard_normal((d - 1, n))]
    ).T
    bad = rng.standard_normal((n, d))
    labeled = np.arange(0, n, 6)
    validation = np.arange(1, n, 6)
    test = np.setdiff1d(
        np.arange(n), np.concatenate([labeled, validation])
    )
    return labels, good, bad, labeled, validation, test


class TestEvaluateGroups:
    def test_selects_informative_group(self, rng):
        labels, good, bad, labeled, validation, test = _separable_setup(rng)
        outcome = evaluate_groups(
            [
                [Candidate("features", bad, tag="bad")],
                [Candidate("features", good, tag="good")],
            ],
            labels,
            labeled,
            validation,
            test,
            ClassifierSpec(kind="rls"),
        )
        assert outcome.selected_tag == "good"
        assert outcome.test_accuracy > 0.9
        assert len(outcome.group_validation_accuracies) == 2

    def test_knn_selects_k(self, rng):
        labels, good, _bad, labeled, validation, test = _separable_setup(rng)
        outcome = evaluate_groups(
            [[Candidate("features", good, tag="g")]],
            labels,
            labeled,
            validation,
            test,
            ClassifierSpec(kind="knn", k_grid=(1, 3, 5)),
        )
        assert outcome.selected_k in (1, 3, 5)
        assert outcome.test_accuracy > 0.8

    def test_distance_candidate_with_knn(self, rng):
        labels, good, _bad, labeled, validation, test = _separable_setup(rng)
        diff = good[:, :1] - good[:, :1].T  # distance on informative dim
        distances = np.abs(diff)
        outcome = evaluate_groups(
            [[Candidate("distances", distances, tag="d")]],
            labels,
            labeled,
            validation,
            test,
            ClassifierSpec(kind="knn"),
        )
        assert outcome.test_accuracy > 0.85

    def test_distance_candidate_rejected_for_rls(self, rng):
        labels, good, _bad, labeled, validation, test = _separable_setup(rng)
        distances = np.abs(good[:, :1] - good[:, :1].T)
        with pytest.raises(ValidationError):
            evaluate_groups(
                [[Candidate("distances", distances)]],
                labels,
                labeled,
                validation,
                test,
                ClassifierSpec(kind="rls"),
            )

    def test_combined_group_averages_scores(self, rng):
        labels, good, bad, labeled, validation, test = _separable_setup(rng)
        outcome = evaluate_groups(
            [
                [
                    Candidate("features", good, tag="good"),
                    Candidate("features", bad, tag="bad"),
                ]
            ],
            labels,
            labeled,
            validation,
            test,
            ClassifierSpec(kind="rls"),
        )
        # The informative half keeps the combination above chance.
        assert outcome.test_accuracy > 0.7

    def test_empty_groups_rejected(self, rng):
        with pytest.raises(ValidationError):
            evaluate_groups(
                [], np.zeros(3), [0], [1], [2], ClassifierSpec()
            )


class _IdentityMethod:
    """Trivial adapter exposing the raw first view."""

    name = "identity"

    def groups(self, views, r):
        del r
        return [[Candidate("features", views[0].T, tag="raw")]]


class TestRunDimensionSweep:
    def test_sweep_shapes(self, latent_data):
        config = SweepConfig(
            dims=(2, 3),
            n_labeled=30,
            n_runs=2,
            classifier=ClassifierSpec(kind="rls"),
            random_state=0,
        )
        results = run_dimension_sweep(
            [_IdentityMethod()],
            latent_data.views,
            latent_data.labels,
            config,
        )
        sweep = results["identity"]
        assert sweep.test_accuracies.shape == (2, 2)
        assert sweep.validation_accuracies.shape == (2, 2)
        assert sweep.mean_curve().shape == (2,)

    def test_best_dimension_summary(self, latent_data):
        config = SweepConfig(
            dims=(2, 4), n_labeled=30, n_runs=3, random_state=0
        )
        results = run_dimension_sweep(
            [_IdentityMethod()],
            latent_data.views,
            latent_data.labels,
            config,
        )
        mean, std, best_dims = results["identity"].best_dimension_summary()
        assert 0.0 <= mean <= 1.0
        assert std >= 0.0
        assert len(best_dims) == 3
        assert set(best_dims) <= {2, 4}

    def test_measure_records_resources(self, latent_data):
        config = SweepConfig(
            dims=(2,), n_labeled=30, n_runs=1, measure=True, random_state=0
        )
        results = run_dimension_sweep(
            [_IdentityMethod()],
            latent_data.views,
            latent_data.labels,
            config,
        )
        sweep = results["identity"]
        assert len(sweep.resources) == 1
        assert sweep.time_curve().shape == (1,)
        assert sweep.memory_curve().shape == (1,)

    def test_mismatched_labels_rejected(self, latent_data):
        config = SweepConfig(dims=(2,), n_labeled=10, n_runs=1)
        with pytest.raises(ExperimentError):
            run_dimension_sweep(
                [_IdentityMethod()],
                latent_data.views,
                latent_data.labels[:-5],
                config,
            )

    def test_empty_dims_rejected(self, latent_data):
        config = SweepConfig(dims=(), n_labeled=10, n_runs=1)
        with pytest.raises(ExperimentError):
            run_dimension_sweep(
                [_IdentityMethod()],
                latent_data.views,
                latent_data.labels,
                config,
            )

    def test_deterministic_given_seed(self, latent_data):
        config = SweepConfig(
            dims=(2,), n_labeled=30, n_runs=2, random_state=11
        )
        first = run_dimension_sweep(
            [_IdentityMethod()],
            latent_data.views,
            latent_data.labels,
            config,
        )
        second = run_dimension_sweep(
            [_IdentityMethod()],
            latent_data.views,
            latent_data.labels,
            config,
        )
        np.testing.assert_allclose(
            first["identity"].test_accuracies,
            second["identity"].test_accuracies,
        )
