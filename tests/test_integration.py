"""Integration tests: full pipelines across modules.

These mirror the paper's Fig. 2 system diagram — features → covariance
tensor → rank-r decomposition → projection → downstream learner — and
exercise module boundaries that unit tests cannot.
"""

import numpy as np
import pytest

from repro import CCA, KTCCA, LSCCA, MaxVarCCA, TCCA
from repro.classifiers import KNNClassifier, RLSClassifier
from repro.datasets import (
    make_ads_like,
    make_multiview_latent,
    make_secstr_like,
    sample_labeled_indices,
)
from repro.kernels import ExponentialKernel


class TestLinearPipeline:
    def test_tcca_beats_raw_features_on_latent_data(self):
        data = make_multiview_latent(
            n_samples=900, dims=(25, 20, 15), random_state=0
        )
        labeled = sample_labeled_indices(data.labels, 80, random_state=0)
        rest = np.setdiff1d(np.arange(data.n_samples), labeled)

        tcca = TCCA(n_components=5, epsilon=1.0, random_state=0).fit(
            data.views
        )
        z = tcca.transform_combined(data.views)
        tcca_accuracy = (
            RLSClassifier()
            .fit(z[labeled], data.labels[labeled])
            .score(z[rest], data.labels[rest])
        )

        raw = np.vstack(data.views).T
        raw_accuracy = (
            RLSClassifier()
            .fit(raw[labeled], data.labels[labeled])
            .score(raw[rest], data.labels[rest])
        )
        assert tcca_accuracy > raw_accuracy

    def test_tcca_and_lscca_find_class_signal_on_secstr(self):
        data = make_secstr_like(800, random_state=0)
        labeled = sample_labeled_indices(data.labels, 100, random_state=0)
        rest = np.setdiff1d(np.arange(data.n_samples), labeled)
        for model in (
            TCCA(n_components=5, epsilon=1e-1, random_state=0),
            LSCCA(n_components=5, epsilon=1e-1, random_state=0),
        ):
            z = model.fit(data.views).transform_combined(data.views)
            accuracy = (
                RLSClassifier()
                .fit(z[labeled], data.labels[labeled])
                .score(z[rest], data.labels[rest])
            )
            assert accuracy > 0.55  # clearly above binary chance

    def test_all_multiset_methods_project_out_of_sample(self):
        data = make_multiview_latent(
            n_samples=300, dims=(10, 9, 8), random_state=1
        )
        train = [view[:, :250] for view in data.views]
        test = [view[:, 250:] for view in data.views]
        for model in (
            TCCA(n_components=3, random_state=0),
            LSCCA(n_components=3, random_state=0),
            MaxVarCCA(n_components=3),
        ):
            model.fit(train)
            projected = model.transform_combined(test)
            assert projected.shape == (50, 9)
            assert np.all(np.isfinite(projected))

    def test_two_view_cca_agrees_with_tcca_m2(self):
        # For m = 2 the whitened tensor is a matrix and TCCA's ALS must
        # recover the CCA singular structure: same subspace, same top
        # correlation.
        data = make_multiview_latent(
            n_samples=600, dims=(12, 10), random_state=2
        )
        cca = CCA(n_components=3, epsilon=1e-1).fit(data.views)
        tcca = TCCA(n_components=3, epsilon=1e-1, random_state=0).fit(
            data.views
        )
        assert tcca.correlations_[0] == pytest.approx(
            cca.correlations_[0], abs=1e-3
        )
        z_cca = cca.transform(data.views)[0]
        z_tcca = tcca.transform(data.views)[0]
        # Subspace overlap of the projections (principal angles).
        q_cca, _ = np.linalg.qr(z_cca - z_cca.mean(0))
        q_tcca, _ = np.linalg.qr(z_tcca - z_tcca.mean(0))
        overlap = np.linalg.svd(q_cca.T @ q_tcca, compute_uv=False)
        assert overlap[0] > 0.99

    def test_ads_pipeline_beats_majority_class(self):
        data = make_ads_like(900, dims=(60, 50, 45), random_state=0)
        labeled = sample_labeled_indices(data.labels, 100, random_state=0)
        rest = np.setdiff1d(np.arange(data.n_samples), labeled)
        best = 0.0
        for epsilon in (1e-1, 1e0):
            tcca = TCCA(
                n_components=5, epsilon=epsilon, random_state=0
            ).fit(data.views)
            z = tcca.transform_combined(data.views)
            accuracy = (
                RLSClassifier()
                .fit(z[labeled], data.labels[labeled])
                .score(z[rest], data.labels[rest])
            )
            best = max(best, accuracy)
        majority = max(
            data.labels[rest].mean(), 1.0 - data.labels[rest].mean()
        )
        assert best > majority


class TestKernelPipeline:
    def test_ktcca_knn_pipeline(self):
        data = make_multiview_latent(
            n_samples=150, dims=(15, 12, 10), random_state=3
        )
        kernels = [ExponentialKernel() for _ in data.views]
        ktcca = KTCCA(
            n_components=5, epsilon=1e-1, kernels=kernels, random_state=0
        ).fit(data.views)
        z = ktcca.transform_train_combined()
        labeled = sample_labeled_indices(data.labels, 40, random_state=0)
        rest = np.setdiff1d(np.arange(150), labeled)
        accuracy = (
            KNNClassifier(5)
            .fit(z[labeled], data.labels[labeled])
            .score(z[rest], data.labels[rest])
        )
        assert accuracy > 0.55

    def test_ktcca_out_of_sample_matches_refit_geometry(self):
        data = make_multiview_latent(
            n_samples=120, dims=(10, 9, 8), random_state=4
        )
        train = [view[:, :100] for view in data.views]
        test = [view[:, 100:] for view in data.views]
        kernels = [ExponentialKernel() for _ in train]
        ktcca = KTCCA(
            n_components=3, epsilon=1e-1, kernels=kernels, random_state=0
        ).fit(train)
        projected = ktcca.transform(test)
        assert all(z.shape == (20, 3) for z in projected)
        assert all(np.all(np.isfinite(z)) for z in projected)


class TestDecompositionSolversAgree:
    def test_als_power_hopm_same_leading_direction(self):
        data = make_multiview_latent(
            n_samples=700,
            dims=(12, 10, 8),
            n_signal_factors=1,
            n_nuisance_factors=0,
            random_state=5,
        )
        leading = []
        for decomposition in ("als", "hopm", "power"):
            model = TCCA(
                n_components=1,
                epsilon=1e-1,
                decomposition=decomposition,
                random_state=0,
            ).fit(data.views)
            leading.append(model.canonical_vectors_[0][:, 0])
        for other in leading[1:]:
            cosine = abs(
                leading[0]
                @ other
                / (np.linalg.norm(leading[0]) * np.linalg.norm(other))
            )
            assert cosine > 0.99
