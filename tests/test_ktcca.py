"""Unit tests for KTCCA — including a Theorem 3 numerical check."""

import numpy as np
import pytest

from repro.core.ktcca import KTCCA
from repro.exceptions import NotFittedError, ValidationError
from repro.kernels.functions import ExponentialKernel, LinearKernel
from repro.linalg.covariance import covariance_tensor


def _shared_signal_views(rng, n=60, dims=(6, 5, 4), noise=0.2):
    t = rng.exponential(1.0, n) - 1.0
    return [
        np.outer(rng.standard_normal(d), t)
        + noise * rng.standard_normal((d, n))
        for d in dims
    ]


class TestTheorem3:
    """K_{12…m} equals the tensor of kernel-matrix columns (Theorem 3)."""

    def test_kernel_tensor_identity_linear_kernel(self, rng):
        # With φ = identity, C ×_p φ(X_p)^T must equal (1/N) Σ k_1n ∘ k_2n ∘ k_3n
        views = [rng.standard_normal((d, 12)) for d in (3, 4, 2)]
        n = 12
        c_tensor = covariance_tensor(views, assume_centered=True)
        from repro.tensor.dense import mode_product

        lhs = c_tensor
        for mode, view in enumerate(views):
            lhs = mode_product(lhs, view.T, mode)
        kernels = [view.T @ view for view in views]
        rhs = np.zeros((n, n, n))
        for sample in range(n):
            rhs += np.einsum(
                "a,b,c->abc",
                kernels[0][:, sample],
                kernels[1][:, sample],
                kernels[2][:, sample],
            )
        rhs /= n
        np.testing.assert_allclose(lhs, rhs, atol=1e-8)


class TestKTCCAFit:
    def test_linear_kernel_recovers_signal(self, rng):
        views = _shared_signal_views(rng)
        model = KTCCA(
            n_components=1,
            epsilon=1e-1,
            kernels=[LinearKernel() for _ in views],
            random_state=0,
        ).fit(views)
        zs = model.transform_train()
        for p in range(3):
            for q in range(p + 1, 3):
                corr = abs(np.corrcoef(zs[p][:, 0], zs[q][:, 0])[0, 1])
                assert corr > 0.8

    def test_precomputed_matches_callable(self, rng):
        views = _shared_signal_views(rng)
        kernels = [view.T @ view for view in views]
        precomputed = KTCCA(
            n_components=2, epsilon=1e-1, random_state=0
        ).fit(kernels)
        via_callable = KTCCA(
            n_components=2,
            epsilon=1e-1,
            kernels=[LinearKernel() for _ in views],
            random_state=0,
        ).fit(views)
        np.testing.assert_allclose(
            np.abs(precomputed.correlations_),
            np.abs(via_callable.correlations_),
            rtol=1e-6,
        )

    def test_kernel_tensor_shape(self, rng):
        views = _shared_signal_views(rng, n=20)
        model = KTCCA(
            n_components=1,
            kernels=[ExponentialKernel() for _ in views],
            random_state=0,
        ).fit(views)
        assert model.kernel_tensor_shape_ == (20, 20, 20)

    def test_transform_new_data_shape(self, rng):
        views = _shared_signal_views(rng, n=40)
        model = KTCCA(
            n_components=2,
            kernels=[ExponentialKernel() for _ in views],
            random_state=0,
        ).fit(views)
        new = model.transform([v[:, :8] for v in views])
        assert all(z.shape == (8, 2) for z in new)

    def test_train_transform_consistent_with_blocks(self, rng):
        views = _shared_signal_views(rng, n=30)
        model = KTCCA(
            n_components=2,
            kernels=[LinearKernel() for _ in views],
            random_state=0,
        ).fit(views)
        train = model.transform_train()
        as_new = model.transform(views)
        for z_train, z_new in zip(train, as_new):
            np.testing.assert_allclose(z_train, z_new, atol=1e-8)

    def test_pls_constraint(self, rng):
        views = _shared_signal_views(rng, n=30)
        kernels = [view.T @ view for view in views]
        epsilon = 1e-1
        model = KTCCA(
            n_components=2, epsilon=epsilon, center=False, random_state=0
        ).fit(kernels)
        for kernel, duals in zip(kernels, model.dual_vectors_):
            target = kernel @ kernel + epsilon * kernel
            for k in range(2):
                a = duals[:, k]
                assert a @ target @ a == pytest.approx(1.0, abs=1e-3)

    def test_combined_train_shape(self, rng):
        views = _shared_signal_views(rng, n=25)
        model = KTCCA(
            n_components=3,
            kernels=[LinearKernel() for _ in views],
            random_state=0,
        ).fit(views)
        assert model.transform_train_combined().shape == (25, 9)

    def test_kernel_count_mismatch(self, rng):
        views = _shared_signal_views(rng, n=15)
        with pytest.raises(ValidationError):
            KTCCA(kernels=[LinearKernel()] * 2, random_state=0).fit(views)

    def test_kernel_size_mismatch(self):
        with pytest.raises(ValidationError):
            KTCCA(random_state=0).fit([np.eye(5), np.eye(5), np.eye(6)])

    def test_components_exceed_samples(self, rng):
        views = _shared_signal_views(rng, n=10)
        kernels = [view.T @ view for view in views]
        with pytest.raises(ValidationError):
            KTCCA(n_components=20, random_state=0).fit(kernels)

    def test_not_fitted_train_transform(self):
        with pytest.raises(NotFittedError):
            KTCCA().transform_train()

    def test_hopm_multi_component_rejected(self):
        with pytest.raises(ValidationError):
            KTCCA(n_components=2, decomposition="hopm")
