"""Tests for the unified estimator API: registry, params, persistence.

The parametrized round-trips below are the PR's acceptance contract:
every registered reducer must be constructible through the registry,
clone/config round-trip its parameters exactly, and — once fitted —
survive ``save_model -> load_model`` with its output unchanged to
<= 1e-12.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    MultiviewPipeline,
    available_classifiers,
    available_reducers,
    get_estimator_class,
    load_model,
    make_classifier,
    make_reducer,
    reducer_from_config,
    register,
    save_model,
)
from repro.api.persistence import (
    MODEL_FORMAT,
    MODEL_FORMAT_VERSION,
    write_archive,
)
from repro.cca.base import ParamsMixin
from repro.exceptions import NotFittedError, ValidationError
from repro.streaming.views import ArrayViewStream

# --------------------------------------------------------------------------
# Per-reducer fit/compare harness
# --------------------------------------------------------------------------

#: how to fit each registered reducer on the shared 3-view fixture and
#: which fitted output must survive persistence bit-for-bit.
REDUCER_CASES = {
    "tcca": {"params": {"n_components": 2, "random_state": 0}, "mode": "views"},
    "lscca": {
        "params": {"n_components": 2, "max_iter": 500, "random_state": 0},
        "mode": "views",
    },
    "maxvar": {"params": {"n_components": 2}, "mode": "views"},
    "cca": {"params": {"n_components": 2}, "mode": "pair"},
    "kcca": {"params": {"n_components": 2}, "mode": "kernel_pair"},
    "ktcca": {
        "params": {"n_components": 2, "random_state": 0},
        "mode": "kernels",
    },
    "dse": {
        "params": {"n_components": 2, "n_neighbors": 5},
        "mode": "transductive",
    },
    "ssmvd": {
        "params": {"n_components": 2, "max_iter": 5, "random_state": 0},
        "mode": "transductive",
    },
    "pca": {"params": {"n_components": 2}, "mode": "matrix"},
    "spectral": {
        "params": {"n_components": 2, "n_neighbors": 5},
        "mode": "matrix_transductive",
    },
}


def _linear_kernels(views):
    return [view.T @ view for view in views]


def _fit_case(name, views):
    """Fit one registered reducer; returns ``(estimator, output_fn)``.

    ``output_fn`` maps an estimator (original or reloaded) to the fitted
    output that must match across persistence: the out-of-sample
    transform where one exists, the fitted embedding for transductive
    estimators.
    """
    case = REDUCER_CASES[name]
    estimator = make_reducer(name, **case["params"])
    mode = case["mode"]
    if mode == "views":
        estimator.fit(views)
        return estimator, lambda e: e.transform_combined(views)
    if mode == "pair":
        estimator.fit(views[:2])
        return estimator, lambda e: e.transform_combined(views[:2])
    if mode == "kernel_pair":
        kernels = _linear_kernels(views[:2])
        estimator.fit(kernels)
        return estimator, lambda e: np.hstack(e.transform(kernels))
    if mode == "kernels":
        kernels = _linear_kernels(views)
        estimator.fit(kernels)
        return estimator, lambda e: np.hstack(e.transform(kernels))
    if mode == "transductive":
        estimator.fit(views)
        return estimator, lambda e: e.embedding_
    if mode == "matrix":
        estimator.fit(views[0])
        return estimator, lambda e: e.transform(views[0])
    assert mode == "matrix_transductive"
    estimator.fit(views[0])
    return estimator, lambda e: e.embedding_


@pytest.fixture
def views(rng):
    views = [rng.standard_normal((d, 40)) for d in (6, 5, 4)]
    return [view - view.mean(axis=1, keepdims=True) for view in views]


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------


class TestRegistry:
    def test_every_reducer_is_covered_by_a_case(self):
        # A newly registered reducer must add a REDUCER_CASES entry so it
        # joins the round-trip contract below.
        assert set(available_reducers()) == set(REDUCER_CASES)

    def test_classifiers_registered(self):
        assert available_classifiers() == ["knn", "rls"]

    def test_make_reducer_forwards_params(self):
        model = make_reducer("tcca", n_components=3, epsilon=0.5)
        assert model.n_components == 3
        assert model.epsilon == 0.5

    def test_make_classifier(self):
        assert make_classifier("knn", n_neighbors=3).n_neighbors == 3

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValidationError, match="tcca"):
            make_reducer("nope")
        with pytest.raises(ValidationError, match="rls"):
            make_classifier("nope")

    def test_invalid_params_fail_at_construction(self):
        with pytest.raises(ValidationError):
            make_reducer("tcca", n_components=0)

    def test_registry_name_stamped(self):
        for name in available_reducers():
            cls = get_estimator_class(name, "reducer")
            assert cls._registry_name_ == name
            assert cls._registry_kind_ == "reducer"

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):

            @register("tcca")
            class Impostor(ParamsMixin):
                pass

    def test_reregistering_same_class_is_noop(self):
        cls = get_estimator_class("tcca")
        assert register("tcca")(cls) is cls

    def test_bad_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            register("thing", kind="transmogrifier")


# --------------------------------------------------------------------------
# Params protocol
# --------------------------------------------------------------------------


class TestParamsProtocol:
    @pytest.mark.parametrize("name", sorted(REDUCER_CASES))
    def test_get_params_reflects_construction(self, name):
        params = REDUCER_CASES[name]["params"]
        estimator = make_reducer(name, **params)
        observed = estimator.get_params()
        for key, value in params.items():
            assert observed[key] == value

    @pytest.mark.parametrize("name", sorted(REDUCER_CASES))
    def test_clone_round_trip(self, name):
        estimator = make_reducer(name, **REDUCER_CASES[name]["params"])
        clone = estimator.clone()
        assert type(clone) is type(estimator)
        assert clone is not estimator
        assert clone.get_params() == estimator.get_params()

    @pytest.mark.parametrize("name", sorted(REDUCER_CASES))
    def test_config_round_trip_through_json(self, name):
        estimator = make_reducer(name, **REDUCER_CASES[name]["params"])
        config = json.loads(json.dumps(estimator.to_config()))
        assert config["estimator"] == name
        rebuilt = reducer_from_config(config)
        assert type(rebuilt) is type(estimator)
        assert rebuilt.get_params() == estimator.get_params()

    def test_clone_is_unfitted(self, views):
        fitted = make_reducer("tcca", n_components=2, random_state=0)
        fitted.fit(views)
        clone = fitted.clone()
        with pytest.raises(NotFittedError):
            clone.transform(views)

    def test_set_params_updates_and_revalidates(self):
        model = make_reducer("tcca", n_components=2)
        assert model.set_params(epsilon=0.5) is model
        assert model.epsilon == 0.5
        assert model.n_components == 2  # untouched params survive
        with pytest.raises(ValidationError):
            model.set_params(decomposition="nope")

    def test_set_params_unknown_key_rejected(self):
        with pytest.raises(ValidationError, match="bogus"):
            make_reducer("cca").set_params(bogus=1)

    def test_set_params_failure_leaves_instance_unchanged(self):
        model = make_reducer(
            "tcca", n_components=1, decomposition="hopm"
        )
        with pytest.raises(ValidationError):
            # hopm forbids n_components > 1; the half-applied update must
            # not stick.
            model.set_params(n_components=5)
        assert model.n_components == 1
        assert model.decomposition == "hopm"

    def test_from_config_rejects_mismatched_estimator(self):
        config = make_reducer("cca").to_config()
        with pytest.raises(ValidationError, match="cca"):
            get_estimator_class("tcca").from_config(config)

    def test_classifier_config_round_trip(self):
        classifier = make_classifier("rls", gamma=0.5, add_bias=False)
        config = json.loads(json.dumps(classifier.to_config()))
        rebuilt = get_estimator_class("rls", "classifier").from_config(config)
        assert rebuilt.get_params() == classifier.get_params()


# --------------------------------------------------------------------------
# Persistence
# --------------------------------------------------------------------------


class TestPersistence:
    @pytest.mark.parametrize("name", sorted(REDUCER_CASES))
    def test_save_load_output_matches(self, name, views, tmp_path):
        estimator, output = _fit_case(name, views)
        expected = output(estimator)
        path = tmp_path / f"{name}.npz"
        assert save_model(estimator, path) == path
        loaded = load_model(path)
        assert type(loaded) is type(estimator)
        assert loaded.get_params() == estimator.get_params()
        np.testing.assert_allclose(
            output(loaded), expected, rtol=0.0, atol=1e-12
        )

    def test_tcca_fit_stream_save_load(self, views, tmp_path):
        model = make_reducer("tcca", n_components=2, random_state=0)
        model.fit_stream(ArrayViewStream(views, chunk_size=16))
        expected = model.transform_combined(views)
        path = tmp_path / "stream.npz"
        save_model(model, path)
        np.testing.assert_allclose(
            load_model(path).transform_combined(views),
            expected,
            rtol=0.0,
            atol=1e-12,
        )

    def test_unfitted_estimator_round_trips(self, tmp_path):
        path = tmp_path / "unfitted.npz"
        save_model(make_reducer("cca", n_components=3), path)
        loaded = load_model(path)
        assert loaded.n_components == 3
        assert not hasattr(loaded, "canonical_vectors_")

    def test_callable_kernels_refused(self, tmp_path):
        from repro.kernels.functions import LinearKernel

        model = make_reducer("kcca", kernels=[LinearKernel(), LinearKernel()])
        with pytest.raises(ValidationError, match="JSON"):
            save_model(model, tmp_path / "kcca.npz")

    def test_unregistered_estimator_refused(self, tmp_path):
        class Unregistered(ParamsMixin):
            def __init__(self):
                pass

        with pytest.raises(ValidationError, match="not registered"):
            save_model(Unregistered(), tmp_path / "x.npz")

    def test_unregistered_subclass_refused(self, tmp_path):
        # An unregistered subclass inherits the parent's registry stamp
        # but must not be persisted (it would load back as the parent).
        class TweakedCCA(get_estimator_class("cca")):
            pass

        with pytest.raises(ValidationError, match="not registered"):
            save_model(TweakedCCA(n_components=2), tmp_path / "sub.npz")

    def test_not_a_model_file(self, tmp_path):
        path = tmp_path / "random.npz"
        with open(path, "wb") as handle:
            np.savez(handle, stuff=np.zeros(3))
        with pytest.raises(ValidationError, match="not a repro artifact"):
            load_model(path)

    def test_future_version_refused(self, tmp_path):
        header = {
            "format": MODEL_FORMAT,
            "version": MODEL_FORMAT_VERSION + 1,
            "estimator": "cca",
            "kind": "reducer",
            "params": {},
            "state": {},
        }
        path = tmp_path / "future.npz"
        write_archive(path, header, {})
        with pytest.raises(ValidationError, match="version"):
            load_model(path)

    def test_save_is_atomic_on_crash_before_rename(
        self, views, tmp_path, monkeypatch
    ):
        """A failure between write and rename never corrupts the model.

        Simulates a crash at the worst moment — the archive fully
        written to the temporary file but ``os.replace`` never reached —
        and asserts the deployed file still loads as the *old* model and
        no temp litter is left behind.
        """
        import os

        from repro.artifacts import io as artifacts_io

        path = tmp_path / "deployed.npz"
        first, _ = _fit_case("tcca", views)
        save_model(first, path)
        expected = first.transform_combined(views)

        second = make_reducer("tcca", n_components=1, random_state=1).fit(views)

        def crash(src, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(artifacts_io.os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            save_model(second, path)
        monkeypatch.undo()

        # the deployed file is still the first model, intact
        loaded = load_model(path)
        assert type(loaded) is type(first)
        np.testing.assert_allclose(
            loaded.transform_combined(views), expected, rtol=0, atol=1e-12
        )
        # no temporary files left next to the model
        assert os.listdir(tmp_path) == ["deployed.npz"]

    def test_save_is_atomic_on_write_failure(
        self, views, tmp_path, monkeypatch
    ):
        """A failure *during* the write also leaves the old file intact."""
        import os

        from repro.artifacts import io as artifacts_io

        path = tmp_path / "deployed.npz"
        first, _ = _fit_case("tcca", views)
        save_model(first, path)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(artifacts_io.np, "savez", explode)
        with pytest.raises(OSError, match="disk full"):
            save_model(first, path)
        monkeypatch.undo()

        assert load_model(path).get_params() == first.get_params()
        assert os.listdir(tmp_path) == ["deployed.npz"]

    def test_atomic_save_honors_umask_permissions(self, views, tmp_path):
        """mkstemp's 0600 must not leak into the deployed model file."""
        import os
        import stat

        path = tmp_path / "readable.npz"
        estimator, _ = _fit_case("tcca", views)
        save_model(estimator, path)
        umask = os.umask(0)
        os.umask(umask)
        mode = stat.S_IMODE(os.stat(path).st_mode)
        assert mode == (0o666 & ~umask)


# --------------------------------------------------------------------------
# Pipeline
# --------------------------------------------------------------------------


class TestMultiviewPipeline:
    @pytest.fixture
    def fitted(self, latent_data):
        pipeline = MultiviewPipeline(
            "tcca",
            "rls",
            reducer_params={"n_components": 3, "random_state": 0},
        )
        return pipeline.fit(latent_data.views, latent_data.labels)

    def test_names_resolve_through_registry(self, fitted):
        assert type(fitted.reducer).__name__ == "TCCA"
        assert type(fitted.classifier).__name__ == "RLSClassifier"
        assert fitted.reducer.n_components == 3

    def test_predict_and_score(self, fitted, latent_data):
        predictions = fitted.predict(latent_data.views)
        assert predictions.shape == latent_data.labels.shape
        score = fitted.score(latent_data.views, latent_data.labels)
        assert 0.0 <= score <= 1.0
        # the shared subspace should beat chance on the latent data
        assert score > 0.6

    def test_transform_is_combined_representation(self, fitted, latent_data):
        representation = fitted.transform(latent_data.views)
        assert representation.shape == (latent_data.n_samples, 3 * 3)

    def test_unfitted_raises(self):
        pipeline = MultiviewPipeline("maxvar", "knn")
        with pytest.raises(NotFittedError):
            pipeline.predict([np.zeros((3, 4)), np.zeros((2, 4))])

    def test_save_load_predictions_match(self, fitted, latent_data, tmp_path):
        path = tmp_path / "pipeline.npz"
        fitted.save(path)
        loaded = load_model(path)
        assert isinstance(loaded, MultiviewPipeline)
        np.testing.assert_array_equal(
            loaded.predict(latent_data.views),
            fitted.predict(latent_data.views),
        )
        np.testing.assert_allclose(
            loaded.transform(latent_data.views),
            fitted.transform(latent_data.views),
            rtol=0.0,
            atol=1e-12,
        )

    def test_save_model_dispatches_to_pipeline(self, fitted, tmp_path):
        path = tmp_path / "via-save-model.npz"
        save_model(fitted, path)
        assert isinstance(MultiviewPipeline.load(path), MultiviewPipeline)

    def test_load_rejects_bare_estimator(self, tmp_path):
        path = tmp_path / "bare.npz"
        save_model(make_reducer("cca"), path)
        with pytest.raises(ValidationError, match="bare"):
            MultiviewPipeline.load(path)

    def test_transductive_reducer_rejected(self):
        with pytest.raises(ValidationError, match="inductive"):
            MultiviewPipeline("dse", "rls")

    def test_instance_arguments_accepted(self, latent_data):
        pipeline = MultiviewPipeline(
            make_reducer("maxvar", n_components=2),
            make_classifier("knn", n_neighbors=3),
        )
        pipeline.fit(latent_data.views, latent_data.labels)
        assert pipeline.predict(latent_data.views).shape == (
            latent_data.n_samples,
        )

    def test_params_for_instance_rejected(self):
        with pytest.raises(ValidationError, match="reducer_params"):
            MultiviewPipeline(
                make_reducer("tcca"), "rls", reducer_params={"epsilon": 1.0}
            )

    def test_scale_views_survives_persistence(self, latent_data, tmp_path):
        scaled = MultiviewPipeline(
            "tcca",
            "rls",
            scale_views=True,
            reducer_params={"n_components": 2, "random_state": 0},
        ).fit(latent_data.views, latent_data.labels)
        path = tmp_path / "scaled.npz"
        scaled.save(path)
        loaded = load_model(path)
        assert loaded.scale_views is True
        np.testing.assert_allclose(
            loaded.transform(latent_data.views),
            scaled.transform(latent_data.views),
            rtol=0.0,
            atol=1e-12,
        )
