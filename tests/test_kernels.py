"""Unit tests for repro.kernels: distances, kernel functions, centering."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels.centering import (
    center_kernel,
    center_kernel_test,
    normalize_kernel,
)
from repro.kernels.distances import chi_square_distances, euclidean_distances
from repro.kernels.functions import (
    ExponentialKernel,
    LinearKernel,
    RBFKernel,
    exponential_kernel,
    linear_kernel,
    rbf_kernel,
)


class TestEuclideanDistances:
    def test_matches_naive(self, rng):
        a = rng.standard_normal((3, 8))
        b = rng.standard_normal((3, 5))
        distances = euclidean_distances(a, b)
        for i in range(8):
            for j in range(5):
                assert distances[i, j] == pytest.approx(
                    np.linalg.norm(a[:, i] - b[:, j]), abs=1e-10
                )

    def test_self_diagonal_zero(self, rng):
        a = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            np.diag(euclidean_distances(a)), np.zeros(6), atol=1e-6
        )

    def test_symmetry(self, rng):
        a = rng.standard_normal((4, 6))
        d = euclidean_distances(a)
        np.testing.assert_allclose(d, d.T, atol=1e-12)

    def test_feature_mismatch_raises(self, rng):
        with pytest.raises(Exception):
            euclidean_distances(
                rng.standard_normal((3, 4)), rng.standard_normal((2, 4))
            )


class TestChiSquareDistances:
    def test_matches_naive(self, rng):
        a = rng.random((4, 6))
        b = rng.random((4, 3))
        distances = chi_square_distances(a, b)
        for i in range(6):
            for j in range(3):
                num = (a[:, i] - b[:, j]) ** 2
                den = a[:, i] + b[:, j] + 1e-10
                assert distances[i, j] == pytest.approx(
                    np.sum(num / den), abs=1e-8
                )

    def test_negative_input_raises(self, rng):
        with pytest.raises(ValidationError):
            chi_square_distances(rng.standard_normal((3, 4)))

    def test_identical_histograms_zero(self, rng):
        a = rng.random((5, 4))
        d = chi_square_distances(a)
        np.testing.assert_allclose(np.diag(d), np.zeros(4), atol=1e-10)


class TestKernelFunctions:
    def test_linear_kernel(self, rng):
        a = rng.standard_normal((3, 5))
        np.testing.assert_allclose(linear_kernel(a), a.T @ a)

    def test_rbf_diagonal_one(self, rng):
        a = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            np.diag(rbf_kernel(a, gamma=0.5)), np.ones(5), atol=1e-10
        )

    def test_rbf_gamma_validation(self, rng):
        with pytest.raises(ValidationError):
            rbf_kernel(rng.standard_normal((2, 3)), gamma=0.0)

    def test_exponential_kernel_range(self, rng):
        a = rng.standard_normal((3, 10))
        kernel = exponential_kernel(a)
        assert kernel.min() >= np.exp(-1.0) - 1e-12  # λ = max distance
        assert kernel.max() <= 1.0 + 1e-12

    def test_exponential_kernel_chi2(self, rng):
        a = rng.random((4, 6))
        kernel = exponential_kernel(a, distance="chi2")
        assert kernel.shape == (6, 6)
        np.testing.assert_allclose(np.diag(kernel), np.ones(6), atol=1e-10)

    def test_exponential_unknown_distance(self, rng):
        with pytest.raises(ValidationError):
            exponential_kernel(rng.random((2, 3)), distance="cosine")

    def test_exponential_degenerate_bandwidth(self):
        constant = np.ones((3, 4))
        kernel = exponential_kernel(constant)
        np.testing.assert_allclose(kernel, np.ones((4, 4)))


class TestKernelObjects:
    def test_linear_object_matches_function(self, rng):
        a = rng.standard_normal((3, 5))
        kernel = LinearKernel().fit(a)
        np.testing.assert_allclose(kernel(a), linear_kernel(a))

    def test_rbf_median_heuristic(self, rng):
        a = rng.standard_normal((3, 20))
        kernel = RBFKernel().fit(a)
        assert kernel._fitted_gamma > 0.0

    def test_rbf_fixed_gamma_respected(self, rng):
        a = rng.standard_normal((3, 10))
        kernel = RBFKernel(gamma=2.0).fit(a)
        np.testing.assert_allclose(kernel(a), rbf_kernel(a, gamma=2.0))

    def test_exponential_bandwidth_from_train(self, rng):
        train = rng.standard_normal((3, 15))
        test = 100.0 * rng.standard_normal((3, 5))
        kernel = ExponentialKernel().fit(train)
        block = kernel(train, test)
        assert block.shape == (15, 5)
        # Bandwidth came from train distances, so far-away test points give
        # near-zero similarity.
        assert block.max() < 0.5

    def test_exponential_consistent_train_block(self, rng):
        train = rng.standard_normal((3, 10))
        kernel = ExponentialKernel().fit(train)
        np.testing.assert_allclose(kernel(train), kernel(train, train))

    def test_repr_smoke(self):
        assert "LinearKernel" in repr(LinearKernel())
        assert "RBFKernel" in repr(RBFKernel())
        assert "chi2" in repr(ExponentialKernel(distance="chi2"))


class TestCentering:
    def test_centered_kernel_row_sums_zero(self, rng):
        a = rng.standard_normal((3, 8))
        centered = center_kernel(linear_kernel(a))
        np.testing.assert_allclose(centered.sum(axis=0), np.zeros(8), atol=1e-8)
        np.testing.assert_allclose(centered.sum(axis=1), np.zeros(8), atol=1e-8)

    def test_centering_matches_feature_space(self, rng):
        # Centering K = X^T X must equal the kernel of centered features.
        x = rng.standard_normal((4, 10))
        x_centered = x - x.mean(axis=1, keepdims=True)
        np.testing.assert_allclose(
            center_kernel(linear_kernel(x)),
            linear_kernel(x_centered),
            atol=1e-10,
        )

    def test_test_block_matches_feature_space(self, rng):
        x = rng.standard_normal((4, 10))
        y = rng.standard_normal((4, 6))
        mean = x.mean(axis=1, keepdims=True)
        expected = (x - mean).T @ (y - mean)
        np.testing.assert_allclose(
            center_kernel_test(linear_kernel(x, y), linear_kernel(x)),
            expected,
            atol=1e-10,
        )

    def test_test_block_shape_validation(self, rng):
        with pytest.raises(ValueError):
            center_kernel_test(np.ones((5, 3)), np.eye(4))

    def test_normalize_diagonal_ones(self, rng):
        a = rng.standard_normal((3, 7))
        normalized = normalize_kernel(linear_kernel(a) + 7 * np.eye(7))
        np.testing.assert_allclose(np.diag(normalized), np.ones(7))

    def test_normalize_is_cosine(self, rng):
        a = rng.standard_normal((3, 5))
        kernel = linear_kernel(a)
        normalized = normalize_kernel(kernel)
        for i in range(5):
            for j in range(5):
                expected = kernel[i, j] / np.sqrt(
                    kernel[i, i] * kernel[j, j]
                )
                assert normalized[i, j] == pytest.approx(expected)
